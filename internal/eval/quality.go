package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mcorr"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// The detection-quality harness answers the question the pair budget
// raises: how much detection and localization does the system give up
// when it models only a fraction of the l(l−1)/2 pair graph? It replays
// the incident-layer acceptance scenario (group D, injected fault on one
// machine) at a sweep of pair budgets and scores each run's timeline
// against the simulator's ground truth.

// QualityBudgets is the default budget sweep: the full graph baseline
// plus three shrinking fractions of the candidate set.
var QualityBudgets = []string{"full", "50%", "25%", "10%"}

// QualityThreshold is the system-fitness alarm threshold the harness
// scores timelines against (the paper's Q < 0.8 operating point).
const QualityThreshold = 0.8

// qualityFaultKinds are the injected scenarios, one run per kind.
var qualityFaultKinds = []simulator.FaultKind{
	simulator.FaultFlapping,
	simulator.FaultDecoupledSpike,
	simulator.FaultCorrelationBreak,
}

// FaultQuality is one (budget, fault kind) cell of the sweep.
type FaultQuality struct {
	// Kind is the injected simulator fault kind.
	Kind string `json:"kind"`
	// Detected reports whether system Q breached the threshold inside
	// the fault window.
	Detected bool `json:"detected"`
	// DetectDelaySeconds is the time from fault start to the first
	// breaching sample (0 when undetected).
	DetectDelaySeconds float64 `json:"detect_delay_seconds"`
	// FalseAlarmRate is the fraction of non-fault samples that breached.
	FalseAlarmRate float64 `json:"false_alarm_rate"`
	// Precision is the fraction of breaching samples that fell inside
	// the fault window (1 when nothing breached).
	Precision float64 `json:"precision"`
	// SuspectRank is the injected machine's 1-based position in the
	// post-fault localization ranking (1 = correctly blamed worst;
	// 0 = absent from the ranking).
	SuspectRank int `json:"suspect_rank"`
	// FaultMeanQ and NormalMeanQ are the average system fitness inside
	// and outside the fault window (the separation that makes detection
	// possible).
	FaultMeanQ  float64 `json:"fault_mean_q"`
	NormalMeanQ float64 `json:"normal_mean_q"`
}

// BudgetQuality aggregates one budget level across the fault kinds.
type BudgetQuality struct {
	// Budget is the sweep label ("full", "25%", ...).
	Budget string `json:"budget"`
	// Pairs is the number of pairs actually modeled after bootstrap;
	// Candidates is the full l(l−1)/2 graph size.
	Pairs      int `json:"pairs"`
	Candidates int `json:"candidates"`
	// Recall is detected fault kinds / total kinds; MeanPrecision and
	// MeanDelaySeconds average over the kinds (detected kinds only for
	// the delay).
	Recall           float64 `json:"recall"`
	MeanPrecision    float64 `json:"mean_precision"`
	MeanDelaySeconds float64 `json:"mean_delay_seconds"`
	// Localized is how many kinds ranked the injected machine worst.
	Localized int            `json:"localized"`
	Faults    []FaultQuality `json:"faults"`
}

// QualityReport is the full sweep, serialized to QUALITY.json.
type QualityReport struct {
	Threshold float64         `json:"threshold"`
	Budgets   []BudgetQuality `json:"budgets"`
}

// RunQuality runs the detection-quality sweep over the given budget
// labels (QualityBudgets when nil). Every run is a deterministic
// function of the labels: fixed simulator seed, fixed fault windows,
// inline scoring.
func RunQuality(budgets []string) (*QualityReport, error) {
	if budgets == nil {
		budgets = QualityBudgets
	}
	rep := &QualityReport{Threshold: QualityThreshold}
	for _, b := range budgets {
		bq := BudgetQuality{Budget: b}
		var delaySum float64
		var detected int
		for _, kind := range qualityFaultKinds {
			fq, pairs, candidates, err := runQualityScenario(b, kind)
			if err != nil {
				return nil, fmt.Errorf("quality %s/%s: %w", b, kind, err)
			}
			bq.Pairs, bq.Candidates = pairs, candidates
			bq.Faults = append(bq.Faults, fq)
			bq.MeanPrecision += fq.Precision / float64(len(qualityFaultKinds))
			if fq.Detected {
				detected++
				delaySum += fq.DetectDelaySeconds
			}
			if fq.SuspectRank == 1 {
				bq.Localized++
			}
		}
		bq.Recall = float64(detected) / float64(len(qualityFaultKinds))
		if detected > 0 {
			bq.MeanDelaySeconds = delaySum / float64(detected)
		}
		rep.Budgets = append(rep.Budgets, bq)
	}
	return rep, nil
}

// RunQualityScenario runs one (budget, fault kind) cell — exported so a
// tier-1 test can assert a single operating point without paying for the
// whole sweep.
func RunQualityScenario(budget string, kind simulator.FaultKind) (FaultQuality, error) {
	fq, _, _, err := runQualityScenario(budget, kind)
	return fq, err
}

func runQualityScenario(budget string, kind simulator.FaultKind) (FaultQuality, int, int, error) {
	fq := FaultQuality{Kind: kind.String()}
	start := timeseries.MonitoringStart
	trainEnd := start.AddDate(0, 0, 2)
	const faultyIdx = 2
	machine := simulator.MachineName("D", faultyIdx)
	fault := simulator.Fault{
		ID: "quality-" + kind.String(), Machine: machine, Kind: kind,
		Start: trainEnd.Add(6 * time.Hour), End: trainEnd.Add(9 * time.Hour),
	}
	ds, truth, err := simulator.Generate(simulator.GroupConfig{
		Name: "D", Machines: 4, Days: 3, Seed: 11,
		Faults: []simulator.Fault{fault},
	})
	if err != nil {
		return fq, 0, 0, err
	}
	selected := SelectMeasurements(ds, start, trainEnd, SelectionCriteria{Max: 16, MinCV: 0.01})
	if len(selected) < 2 {
		return fq, 0, 0, fmt.Errorf("variance filter kept %d measurements", len(selected))
	}
	watched := Subset(ds, selected)

	mcfg := mcorr.ManagerConfig{
		Model: mcorr.ModelConfig{Adaptive: true, Grid: mcorr.GridConfig{MaxIntervals: 12}},
	}
	var opts []mcorr.MonitorOption
	if budget != "full" {
		n, err := mcorr.ParsePairBudget(budget, len(selected))
		if err != nil {
			return fq, 0, 0, err
		}
		opts = append(opts, mcorr.WithPairBudget(n))
	}
	mon, err := mcorr.NewMonitor(watched.Slice(start, trainEnd), mcfg, opts...)
	if err != nil {
		return fq, 0, 0, err
	}
	fleet := mon.Fleet()
	defer fleet.Close()

	candidates := len(selected) * (len(selected) - 1) / 2
	pairs := len(fleet.Pairs())

	// Stream the faulty day through an hour past the fault; reset the
	// localization accumulators at fault start so the machine ranking
	// reflects the incident window, not the healthy morning.
	end := fault.End.Add(time.Hour)
	var reports []mcorr.StepReport
	for tm := trainEnd; tm.Before(end); tm = tm.Add(timeseries.SampleStep) {
		if tm.Equal(fault.Start) {
			fleet.ResetAccumulators()
		}
		var batch []mcorr.Sample
		for _, id := range selected {
			s := watched.Get(id)
			if i, ok := s.IndexOf(tm); ok {
				batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[i]})
			}
		}
		rs, err := mon.Ingest(batch...)
		if err != nil {
			return fq, 0, 0, err
		}
		reports = append(reports, rs...)
	}

	timeline := SystemTimeline(reports)
	m := EvaluateDetection(timeline, truth, QualityThreshold)
	fq.Detected = m.Detected > 0
	fq.DetectDelaySeconds = m.MeanDelay.Seconds()
	fq.FalseAlarmRate = m.FalseAlarmRate
	fq.FaultMeanQ = m.FaultMean
	fq.NormalMeanQ = m.NormalMean

	// Sample-level precision: what fraction of alarms pointed at the
	// fault window?
	var truePos, falsePos int
	for _, s := range timeline {
		if s.Score >= QualityThreshold {
			continue
		}
		if fault.ActiveAt(s.Time) {
			truePos++
		} else {
			falsePos++
		}
	}
	fq.Precision = 1
	if truePos+falsePos > 0 {
		fq.Precision = float64(truePos) / float64(truePos+falsePos)
	}

	for i, ms := range fleet.Localize().Machines {
		if ms.Machine == machine {
			fq.SuspectRank = i + 1
			break
		}
	}
	return fq, pairs, candidates, nil
}

// WriteQualityJSON serializes the report deterministically (struct
// order, indented) for QUALITY.json and the CI artifact.
func WriteQualityJSON(w io.Writer, rep *QualityReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// QualityTable renders the sweep as the budget-tuning table.
func QualityTable(rep *QualityReport) *Table {
	t := &Table{
		Title:   "Detection quality vs pair budget",
		Columns: []string{"budget", "pairs", "kind", "detected", "delay", "precision", "suspect rank"},
		Notes: []string{
			fmt.Sprintf("alarm threshold: system Q < %.2f", rep.Threshold),
			"suspect rank 1 = injected machine blamed worst during the fault window",
		},
	}
	for _, bq := range rep.Budgets {
		for _, fq := range bq.Faults {
			det := "no"
			if fq.Detected {
				det = "yes"
			}
			t.AddRow(
				bq.Budget,
				fmt.Sprintf("%d/%d", bq.Pairs, bq.Candidates),
				fq.Kind,
				det,
				(time.Duration(fq.DetectDelaySeconds) * time.Second).String(),
				fmt.Sprintf("%.3f", fq.Precision),
				fmt.Sprintf("%d", fq.SuspectRank),
			)
		}
	}
	return t
}
