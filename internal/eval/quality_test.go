package eval

import (
	"bytes"
	"encoding/json"
	"testing"

	"mcorr/internal/simulator"
)

// TestQualityLocalizationAtQuarterBudget is the pair-budget acceptance
// gate: with only 25% of the pair graph modeled, the injected machine
// must still rank worst in the localization for every fault kind. This
// is the claim that makes -pair-budget safe to turn on — the budget
// trades pair coverage for speed, not for the answer to "which machine".
func TestQualityLocalizationAtQuarterBudget(t *testing.T) {
	kinds := []simulator.FaultKind{
		simulator.FaultFlapping,
		simulator.FaultDecoupledSpike,
		simulator.FaultCorrelationBreak,
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			fq, err := RunQualityScenario("25%", kind)
			if err != nil {
				t.Fatalf("RunQualityScenario: %v", err)
			}
			if fq.SuspectRank != 1 {
				t.Errorf("injected machine ranked #%d at 25%% budget, want #1", fq.SuspectRank)
			}
			if fq.FalseAlarmRate > 0.05 {
				t.Errorf("false-alarm rate %.3f at 25%% budget, want <= 0.05", fq.FalseAlarmRate)
			}
		})
	}
}

// TestQualityReportShape runs a single-cell sweep and checks the JSON
// and table renderings stay well-formed and deterministic.
func TestQualityReportShape(t *testing.T) {
	rep, err := RunQuality([]string{"10%"})
	if err != nil {
		t.Fatalf("RunQuality: %v", err)
	}
	if len(rep.Budgets) != 1 || len(rep.Budgets[0].Faults) != 3 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	bq := rep.Budgets[0]
	if bq.Pairs <= 0 || bq.Pairs >= bq.Candidates {
		t.Errorf("10%% budget modeled %d of %d pairs, want a strict fraction", bq.Pairs, bq.Candidates)
	}
	var buf bytes.Buffer
	if err := WriteQualityJSON(&buf, rep); err != nil {
		t.Fatalf("WriteQualityJSON: %v", err)
	}
	var decoded QualityReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if decoded.Threshold != QualityThreshold {
		t.Errorf("threshold %g, want %g", decoded.Threshold, QualityThreshold)
	}
	var tbl bytes.Buffer
	if err := QualityTable(rep).Render(&tbl); err != nil {
		t.Fatalf("table render: %v", err)
	}
	if tbl.Len() == 0 {
		t.Error("empty table rendering")
	}
}
