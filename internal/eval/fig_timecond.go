package eval

import (
	"fmt"
	"time"

	"mcorr/internal/core"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// TimeConditionedExtension evaluates the future-work-style extension: one
// transition matrix per time-of-day bucket instead of a single matrix.
// The paper's Figures 15/16 show fitness sagging at peak hours because
// busy-hour dynamics differ from quiet-hour dynamics; conditioning the
// matrix on the hour attacks exactly that.
func TimeConditionedExtension(env *Env, trainDays int) (*Figure, error) {
	if trainDays <= 0 {
		trainDays = 8
	}
	g := env.Group("A")
	// A healthy, workload-driven pair (no injected faults on machine 0).
	a := timeseries.MeasurementID{Machine: simulator.MachineName("A", 0), Metric: simulator.MetricNetIn}
	b := timeseries.MeasurementID{Machine: simulator.MachineName("A", 0), Metric: simulator.MetricCPU}
	trFrom, trTo := timeseries.TrainingSplit(trainDays)
	history, err := g.PairPoints(a, b, trFrom, trTo)
	if err != nil {
		return nil, fmt.Errorf("timecond: %w", err)
	}
	step := g.Dataset.Get(a).Step

	plain, err := core.Train(history, core.Config{Adaptive: true})
	if err != nil {
		return nil, fmt.Errorf("timecond: %w", err)
	}
	cond, err := core.TrainTimeConditioned(history, trFrom, step, 4, core.Config{Adaptive: true})
	if err != nil {
		return nil, fmt.Errorf("timecond: %w", err)
	}

	from, to := timeseries.TestSplit(5)
	pts, err := g.PairPoints(a, b, from, to)
	if err != nil {
		return nil, fmt.Errorf("timecond: %w", err)
	}
	var plainTL, condTL []ScoredSample
	for i, p := range pts {
		tm := from.Add(time.Duration(i) * step)
		if r := plain.Step(p); r.Scored {
			plainTL = append(plainTL, ScoredSample{Time: tm, Score: r.Fitness})
		}
		if r := cond.StepAt(tm, p); r.Scored {
			condTL = append(condTL, ScoredSample{Time: tm, Score: r.Fitness})
		}
	}
	pq := QuarterMeans(plainTL)
	cq := QuarterMeans(condTL)
	tab := &Table{
		Title:   fmt.Sprintf("Mean fitness per six-hour quarter over a 5-day test (train %dd, pair %s ~ %s)", trainDays, a, b),
		Columns: []string{"model", "12am-6am", "6am-12pm", "12pm-6pm", "6pm-12am", "cells"},
	}
	tab.AddRow("single matrix (paper)",
		fmt.Sprintf("%.4f", pq[0]), fmt.Sprintf("%.4f", pq[1]),
		fmt.Sprintf("%.4f", pq[2]), fmt.Sprintf("%.4f", pq[3]),
		fmt.Sprintf("%d", plain.NumCells()))
	tab.AddRow("time-conditioned (4 buckets)",
		fmt.Sprintf("%.4f", cq[0]), fmt.Sprintf("%.4f", cq[1]),
		fmt.Sprintf("%.4f", cq[2]), fmt.Sprintf("%.4f", cq[3]),
		fmt.Sprintf("%d x4", cond.NumCells()))

	var notes []string
	if cq[2] > pq[2] {
		notes = append(notes, fmt.Sprintf(
			"Conditioning the matrix on the time-of-day bucket lifts the hardest (peak) quarter from %.4f to %.4f — directly addressing the paper's Figure 15/16 observation that heavy workloads depress predictability.", pq[2], cq[2]))
	} else {
		notes = append(notes, fmt.Sprintf(
			"On this trace the peak-quarter means are %.4f (single) vs %.4f (conditioned): the simulator's within-day dynamics are homogeneous enough that one matrix suffices; the extension pays off when busy-hour dynamics genuinely differ (see TestTimeConditionedBeatsPlainAtPeak for a regime-switching case).", pq[2], cq[2]))
	}
	return &Figure{
		ID:     "timecond",
		Title:  "Extension: time-of-day-conditioned transition matrices",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}
