package eval

import (
	"math"
	"strings"
)

// sparkBlocks are the eight block glyphs of a unicode sparkline.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode sparkline scaled to [lo, hi].
// NaNs render as spaces. When lo == hi every value renders mid-scale.
func Sparkline(values []float64, lo, hi float64) string {
	var b strings.Builder
	span := hi - lo
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			b.WriteRune(' ')
		case span <= 0:
			b.WriteRune(sparkBlocks[len(sparkBlocks)/2])
		default:
			f := (v - lo) / span
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			i := int(f * float64(len(sparkBlocks)-1))
			b.WriteRune(sparkBlocks[i])
		}
	}
	return b.String()
}

// AutoSparkline renders values scaled to their own finite min/max.
func AutoSparkline(values []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	return Sparkline(values, lo, hi)
}

// Downsample reduces values to at most n points by averaging buckets
// (NaNs skipped; all-NaN buckets stay NaN). Used to fit day-long series
// into one terminal line.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, n)
	for i := range out {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		var cnt int
		for _, v := range values[lo:hi] {
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum / float64(cnt)
		}
	}
	return out
}
