package eval

import (
	"fmt"
	"math"
	"math/rand"

	"mcorr/internal/core"
	"mcorr/internal/mathx"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// samplesPerDay mirrors timeseries.SamplesPerDay for synthetic examples.
const samplesPerDay = timeseries.SamplesPerDay

// Fig01RawSeries reproduces Figure 1: two correlated measurements shown as
// time series over one day.
func Fig01RawSeries(env *Env) (*Figure, error) {
	g := env.Group("A")
	day := timeseries.TestStart
	ids := [2]timeseries.MeasurementID{
		{Machine: simulator.MachineName("A", 0), Metric: simulator.MetricNetOut},
		{Machine: simulator.MachineName("A", 0), Metric: simulator.MetricNetIn},
	}
	tab := &Table{
		Title:   "Two measurements over one day (240 samples at 6-minute intervals)",
		Columns: []string{"measurement", "mean", "std", "min", "max", "shape (downsampled)"},
	}
	xs := make([][]float64, 2)
	for i, id := range ids {
		s := g.Dataset.Get(id).Slice(day, day.AddDate(0, 0, 1))
		if s.Len() == 0 {
			return nil, fmt.Errorf("fig1: no data for %s", id)
		}
		mean, std := s.Stats()
		lo, hi := mathx.MinMax(s.Values)
		xs[i] = s.Values
		tab.AddRow(id.String(),
			fmt.Sprintf("%.0f", mean), fmt.Sprintf("%.0f", std),
			fmt.Sprintf("%.0f", lo), fmt.Sprintf("%.0f", hi),
			AutoSparkline(Downsample(s.Values, 60)))
	}
	r, err := mathx.Pearson(xs[0], xs[1])
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	return &Figure{
		ID:     "fig1",
		Title:  "Measurements as time series",
		Tables: []*Table{tab},
		Notes: []string{
			fmt.Sprintf("The two series move together (Pearson %.3f): both are driven by the shared user-request workload, matching the paper's Figure 1.", r),
		},
	}, nil
}

// pairShape classifies a pair's scatter shape the way Figure 2 does.
func pairShape(pts []mathx.Point2) (pearson, spearman float64, shape string) {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	pearson, _ = mathx.Pearson(xs, ys)
	spearman, _ = mathx.Spearman(xs, ys)
	switch {
	case math.Abs(pearson) >= 0.95:
		shape = "linear"
	case math.Abs(spearman) >= 0.85:
		shape = "non-linear (monotone)"
	default:
		shape = "arbitrary"
	}
	return pearson, spearman, shape
}

// Fig02ScatterShapes reproduces Figure 2(b–d): pairwise correlations of
// the three shapes, plus the in-text census ("nearly half of the
// measurements have linear relationships with at least one other").
func Fig02ScatterShapes(env *Env) (*Figure, error) {
	g := env.Group("A")
	day := timeseries.TestStart
	m0 := simulator.MachineName("A", 0)
	m1 := simulator.MachineName("A", 1)
	cases := []struct {
		label string
		a, b  timeseries.MeasurementID
	}{
		{"2(b) in/out octets, same machine", timeseries.MeasurementID{Machine: m0, Metric: simulator.MetricNetIn}, timeseries.MeasurementID{Machine: m0, Metric: simulator.MetricNetOut}},
		{"2(c) traffic vs CPU across machines", timeseries.MeasurementID{Machine: m0, Metric: simulator.MetricNetIn}, timeseries.MeasurementID{Machine: m1, Metric: simulator.MetricCPU}},
		{"2(d) port utilization vs IO rate", timeseries.MeasurementID{Machine: m0, Metric: simulator.MetricPortUtil}, timeseries.MeasurementID{Machine: m0, Metric: simulator.MetricIORate}},
	}
	tab := &Table{
		Title:   "Pairwise correlation shapes (one day of samples)",
		Columns: []string{"pair", "pearson", "spearman", "classified shape"},
	}
	for _, c := range cases {
		pts, err := g.PairPoints(c.a, c.b, day, day.AddDate(0, 0, 1))
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", c.label, err)
		}
		p, s, shape := pairShape(pts)
		tab.AddRow(c.label, fmt.Sprintf("%.3f", p), fmt.Sprintf("%.3f", s), shape)
	}

	// Census over every measurement of the group.
	census := &Table{
		Title:   "Linear-relationship census (the paper: \"nearly half ... linear with at least one other\")",
		Columns: []string{"measurements", "with >=1 linear partner", "fraction"},
	}
	ids := g.Dataset.IDs()
	window := g.Dataset.Slice(day, day.AddDate(0, 0, 1))
	hasLinear := make([]bool, len(ids))
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if hasLinear[i] && hasLinear[j] {
				continue
			}
			pts, _, err := timeseries.AlignPair(window.Get(ids[i]), window.Get(ids[j]))
			if err != nil {
				continue
			}
			p, _, _ := pairShape(pts)
			if math.Abs(p) >= 0.95 {
				hasLinear[i] = true
				hasLinear[j] = true
			}
		}
	}
	n := 0
	for _, h := range hasLinear {
		if h {
			n++
		}
	}
	census.AddRow(fmt.Sprintf("%d", len(ids)), fmt.Sprintf("%d", n),
		fmt.Sprintf("%.2f", float64(n)/float64(len(ids))))

	return &Figure{
		ID:     "fig2",
		Title:  "Measurement correlations: linear, non-linear, arbitrary shapes",
		Tables: []*Table{tab, census},
		Notes: []string{
			"All three of the paper's correlation shapes arise from the simulated infrastructure, so the model must handle all of them — the paper's motivation for a distribution-free method.",
		},
	}, nil
}

// paperFig5 is the matrix printed in the paper's Figure 5 (percent).
var paperFig5 = [9][9]float64{
	{21.98, 14.65, 8.79, 14.65, 10.99, 7.33, 8.79, 7.33, 5.49},
	{13.16, 19.74, 13.16, 9.87, 13.16, 9.87, 6.58, 7.89, 6.58},
	{8.79, 14.65, 21.98, 7.33, 10.99, 14.65, 5.49, 7.33, 8.79},
	{13.16, 9.87, 6.58, 19.74, 13.16, 7.89, 13.16, 9.87, 6.58},
	{8.82, 11.76, 8.82, 11.76, 17.65, 11.76, 8.82, 11.76, 8.82},
	{6.58, 9.87, 13.16, 7.89, 13.16, 19.74, 6.58, 9.87, 13.16},
	{8.79, 7.33, 5.49, 14.65, 10.99, 7.33, 21.98, 14.65, 8.79},
	{6.58, 7.89, 6.58, 9.87, 13.16, 9.87, 13.16, 19.74, 13.16},
	{5.49, 7.33, 8.79, 7.33, 10.99, 14.65, 8.79, 14.65, 21.98},
}

// Fig05PriorMatrix reproduces Figure 5: the 9×9 prior transition matrix of
// a 3×3 grid, compared entry-by-entry with the published values.
func Fig05PriorMatrix() (*Figure, error) {
	grid, err := core.UniformGrid(0, 3, 3, 0, 3, 3)
	if err != nil {
		return nil, err
	}
	kernel, err := core.NewKernel(core.KernelHarmonic, 2, 3, 3)
	if err != nil {
		return nil, err
	}
	tm, err := core.NewTransitionMatrix(grid, kernel, core.UpdateKernelBayes, 0)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "Prior transition matrix over a 3x3 grid (percent)",
		Columns: []string{"", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9"},
	}
	maxDiff := 0.0
	for i := 0; i < 9; i++ {
		row, err := tm.RowInto(nil, i)
		if err != nil {
			return nil, err
		}
		cells := []string{fmt.Sprintf("c%d", i+1)}
		for j := 0; j < 9; j++ {
			pct := row[j] * 100
			cells = append(cells, fmt.Sprintf("%.2f", pct))
			if d := math.Abs(pct - paperFig5[i][j]); d > maxDiff {
				maxDiff = d
			}
		}
		tab.AddRow(cells...)
	}
	return &Figure{
		ID:     "fig5",
		Title:  "Transition probability matrix (prior)",
		Tables: []*Table{tab},
		Notes: []string{
			fmt.Sprintf("Maximum absolute deviation from the paper's published matrix: %.3f percentage points (printing precision).", maxDiff),
			"The paper's exact prior is reproduced by weight(Δr,Δc) = 2/(w^Δr + w^Δc) with w = 2, normalized per row.",
		},
	}, nil
}

// Fig07GridAdapt reproduces Figures 7/8: the grid built from history data,
// then grown online as the distribution drifts.
func Fig07GridAdapt() (*Figure, error) {
	rng := rand.New(rand.NewSource(77))
	// History: a dense cluster, mirroring the paper's Figure 7 scatter.
	history := make([]mathx.Point2, 3000)
	for i := range history {
		history[i] = mathx.Point2{
			X: 0.2 + rng.NormFloat64()*0.05,
			Y: 0.02 + rng.NormFloat64()*0.005,
		}
	}
	model, err := core.Train(history, core.Config{Adaptive: true})
	if err != nil {
		return nil, err
	}
	before := model.Grid().Clone()

	// Online data drifts along the vertical axis, as in Figure 8. The x
	// coordinates are bootstrapped from history so the horizontal
	// distribution is unchanged and only the vertical axis must grow.
	drift := make([]mathx.Point2, 2000)
	for i := range drift {
		shift := 0.012 * float64(i) / float64(len(drift))
		drift[i] = mathx.Point2{
			X: history[rng.Intn(len(history))].X,
			Y: 0.02 + shift + rng.NormFloat64()*0.005,
		}
	}
	var outliers, growths int
	for _, p := range drift {
		res := model.Step(p)
		if res.OutOfGrid {
			outliers++
		}
		if res.Grown {
			growths++
		}
	}
	after := model.Grid()

	tab := &Table{
		Title:   "Grid structure before and after online drift",
		Columns: []string{"", "x intervals", "y intervals", "cells", "y upper bound"},
	}
	tab.AddRow("initial (Fig 7)", fmt.Sprintf("%d", before.X.Intervals()),
		fmt.Sprintf("%d", before.Y.Intervals()), fmt.Sprintf("%d", before.NumCells()),
		fmt.Sprintf("%.4f", before.Y.Hi()))
	tab.AddRow("updated (Fig 8)", fmt.Sprintf("%d", after.X.Intervals()),
		fmt.Sprintf("%d", after.Y.Intervals()), fmt.Sprintf("%d", after.NumCells()),
		fmt.Sprintf("%.4f", after.Y.Hi()))

	notes := []string{
		fmt.Sprintf("Online growth events: %d; hard outliers rejected: %d.", growths, outliers),
	}
	if after.Y.Intervals() > before.Y.Intervals() && after.X.Intervals() == before.X.Intervals() {
		notes = append(notes, "Intervals were added only on the drifting (vertical) axis, matching the paper's Figure 8.")
	} else {
		notes = append(notes, "WARNING: growth pattern does not match the expected vertical-only extension.")
	}
	return &Figure{
		ID:     "fig7",
		Title:  "Initial grid and online-updated grid",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}

// Fig09Posterior reproduces Figures 9/10: a cell's prior transition
// distribution versus its posterior after observed transitions favouring a
// neighbor. Both update rules are shown: the paper's kernel-Bayes rule
// after a short stream, and the Dirichlet ablation after six full days
// (the pure multiplicative rule keeps sharpening forever, so long streams
// drive it to a point mass; the count-based rule stays soft).
func Fig09Posterior() (*Figure, error) {
	grid, err := core.UniformGrid(0, 4, 4, 0, 4, 4)
	if err != nil {
		return nil, err
	}
	src, dst := 9, 5 // the paper's c12 → c10 analog: an interior pair

	newTM := func(rule core.UpdateRule) (*core.TransitionMatrix, error) {
		kernel, err := core.NewKernel(core.KernelHarmonic, 2, 4, 4)
		if err != nil {
			return nil, err
		}
		return core.NewTransitionMatrix(grid, kernel, rule, 50)
	}
	// drive feeds a mixed transition stream out of src: mostly dst, with
	// self-transitions and two occasional neighbors.
	drive := func(tm *core.TransitionMatrix, n int, seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			to := dst
			switch r := rng.Float64(); {
			case r < 0.30:
				to = src
			case r < 0.40:
				to = 10
			case r < 0.45:
				to = 5 + 1 // the cell right of dst
			}
			if err := tm.Observe(src, to); err != nil {
				return err
			}
		}
		return nil
	}

	kb, err := newTM(core.UpdateKernelBayes)
	if err != nil {
		return nil, err
	}
	prior, err := kb.RowInto(nil, src)
	if err != nil {
		return nil, err
	}
	priorCopy := append([]float64(nil), prior...)
	if err := drive(kb, 24, 9); err != nil {
		return nil, err
	}
	kbPost, err := kb.RowInto(nil, src)
	if err != nil {
		return nil, err
	}

	dir, err := newTM(core.UpdateDirichlet)
	if err != nil {
		return nil, err
	}
	if err := drive(dir, 6*samplesPerDay, 10); err != nil {
		return nil, err
	}
	dirPost, err := dir.RowInto(nil, src)
	if err != nil {
		return nil, err
	}

	tab := &Table{
		Title:   fmt.Sprintf("Transition distribution out of cell c%d (percent)", src+1),
		Columns: []string{"cell", "prior (Fig 9)", "posterior, kernel-Bayes 24 obs (Fig 10)", "posterior, Dirichlet 6 days"},
	}
	for j := range priorCopy {
		tab.AddRow(fmt.Sprintf("c%d", j+1),
			fmt.Sprintf("%.2f", priorCopy[j]*100),
			fmt.Sprintf("%.2f", kbPost[j]*100),
			fmt.Sprintf("%.2f", dirPost[j]*100))
	}
	notes := []string{
		"Divergence note: with the paper's pure multiplicative (kernel-Bayes) updates the posterior keeps sharpening, so after six days of a stationary stream it saturates at the modal cell; the published Figure 10 shows a soft posterior, which the rule produces only early in the stream (24 observations shown). The Dirichlet ablation stays soft at any volume.",
	}
	if core.RankInRow(priorCopy, src) == 1 && core.RankInRow(kbPost, dst) == 1 && core.RankInRow(dirPost, dst) == 1 {
		notes = append(notes, fmt.Sprintf(
			"The prior peaks at the source cell c%d; after observing mostly c%d→c%d transitions the posterior mode moves to c%d under both rules — the paper's Figure 9→10 shift.",
			src+1, src+1, dst+1, dst+1))
	} else {
		notes = append(notes, "WARNING: posterior mode did not shift as in the paper.")
	}
	return &Figure{
		ID:     "fig9",
		Title:  "Prior vs posterior transition distribution",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}

// ClosenessCensus reproduces the in-text §4.2 spatial-closeness check: two
// days of transitions tallied by cell distance (the paper: 701 total, 412
// intra-cell, 280 to the nearest neighbor).
func ClosenessCensus(env *Env) (*Figure, error) {
	g := env.Group("B")
	from := timeseries.MonitoringStart
	to := from.AddDate(0, 0, 2)
	pts, err := g.PairPoints(g.EventPair[0], g.EventPair[1], from, to)
	if err != nil {
		return nil, fmt.Errorf("closeness census: %w", err)
	}
	// A moderate grid resolution, comparable to the paper's worked grids:
	// with very fine cells even normal 6-minute motion crosses a boundary.
	grid, err := core.BuildGrid(pts, core.GridConfig{MaxIntervals: 8})
	if err != nil {
		return nil, fmt.Errorf("closeness census: %w", err)
	}
	counts := make(map[int]int)
	total := 0
	prev, armed := 0, false
	for _, p := range pts {
		cell, ok := grid.Locate(p)
		if !ok {
			armed = false
			continue
		}
		if armed {
			x1, y1 := grid.CellCoords(prev)
			x2, y2 := grid.CellCoords(cell)
			d := absInt(x1 - x2)
			if dy := absInt(y1 - y2); dy > d {
				d = dy
			}
			counts[d]++
			total++
		}
		prev, armed = cell, true
	}
	tab := &Table{
		Title:   fmt.Sprintf("Transitions by cell (Chebyshev) distance over two days (%d transitions)", total),
		Columns: []string{"distance", "transitions", "fraction"},
	}
	maxD := 0
	for d := range counts {
		if d > maxD {
			maxD = d
		}
	}
	monotone := true
	for d := 0; d <= maxD; d++ {
		tab.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", counts[d]),
			fmt.Sprintf("%.3f", float64(counts[d])/float64(total)))
		if d > 0 && counts[d] > counts[d-1] {
			monotone = false
		}
	}
	notes := []string{
		"Paper's measurement: 701 transitions, 412 intra-cell, 280 to the closest neighbor — a sharply decaying profile.",
	}
	if counts[0] > counts[1] && monotone {
		notes = append(notes, "Reproduced: most transitions stay in their cell, the rest decay with distance — validating the spatial-closeness prior.")
	} else if counts[0] > counts[1] {
		notes = append(notes, "Intra-cell transitions dominate; the tail is not perfectly monotone but decays overall.")
	} else {
		notes = append(notes, "WARNING: intra-cell transitions do not dominate; the closeness assumption failed on this data.")
	}
	return &Figure{
		ID:     "closeness",
		Title:  "Spatial-closeness tendency of transitions (§4.2 in-text)",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Fig11Fitness reproduces the worked fitness-score example of Figure 11.
func Fig11Fitness() (*Figure, error) {
	probs := []float64{0.1116, 0.2422, 0.2095, 0.2538, 0.1734, 0.0094}
	paperFitness := []float64{0.3333, 0.8333, 0.6667, 1.0000, 0.5000, 0.1667}
	tab := &Table{
		Title:   "Fitness for each possible destination cell (transition out of c4, 2x3 grid)",
		Columns: []string{"cell", "probability", "rank", "fitness", "paper"},
	}
	maxDiff := 0.0
	for h := range probs {
		rank := core.RankInRow(probs, h)
		fit := core.FitnessFromRow(probs, h)
		if d := math.Abs(fit - paperFitness[h]); d > maxDiff {
			maxDiff = d
		}
		tab.AddRow(fmt.Sprintf("c%d", h+1), fmt.Sprintf("%.2f%%", probs[h]*100),
			fmt.Sprintf("%d", rank), fmt.Sprintf("%.4f", fit), fmt.Sprintf("%.4f", paperFitness[h]))
	}
	return &Figure{
		ID:     "fig11",
		Title:  "Fitness score computation",
		Tables: []*Table{tab},
		Notes: []string{
			fmt.Sprintf("Maximum deviation from the paper's worked example: %.5f.", maxDiff),
		},
	}, nil
}
