package eval

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// testEnv builds one small shared environment for all eval tests (they
// only read from it).
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(EnvConfig{Seed: 2024, Machines: 5, Days: 30})
	})
	if envErr != nil {
		t.Fatalf("NewEnv: %v", envErr)
	}
	return envVal
}

// figure runs a generator and fails the test on error or WARNING notes.
func figure(t *testing.T, f *Figure, err error) *Figure {
	t.Helper()
	if err != nil {
		t.Fatalf("figure: %v", err)
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	if strings.Contains(buf.String(), "WARNING") {
		t.Errorf("figure %s carries a warning:\n%s", f.ID, buf.String())
	}
	return f
}

func TestNewEnvShape(t *testing.T) {
	env := testEnv(t)
	if len(env.Groups) != 3 {
		t.Fatalf("groups = %d", len(env.Groups))
	}
	for _, g := range env.Groups {
		if g.Dataset.Len() != 5*len(simulator.AllMetrics) {
			t.Errorf("group %s measurements = %d", g.Name, g.Dataset.Len())
		}
		if len(g.Truth.Faults) != 14 { // 1 event + 13 sick-machine days
			t.Errorf("group %s faults = %d", g.Name, len(g.Truth.Faults))
		}
		if g.Dataset.Get(g.EventPair[0]) == nil || g.Dataset.Get(g.EventPair[1]) == nil {
			t.Errorf("group %s event pair missing from dataset", g.Name)
		}
	}
	if env.Group("B") == nil || env.Group("nope") != nil {
		t.Error("Group lookup broken")
	}
	// Event timing mirrors the paper: A morning, B/C afternoon.
	if h := env.Group("A").EventFault.Start.Hour(); h != 9 {
		t.Errorf("group A event at %dh, want morning", h)
	}
	for _, name := range []string{"B", "C"} {
		if h := env.Group(name).EventFault.Start.Hour(); h < 12 {
			t.Errorf("group %s event at %dh, want afternoon", name, h)
		}
	}
}

func TestSelectMeasurements(t *testing.T) {
	env := testEnv(t)
	g := env.Group("A")
	from, to := timeseries.TrainingSplit(2)
	all := SelectMeasurements(g.Dataset, from, to, SelectionCriteria{})
	if len(all) == 0 {
		t.Fatal("no measurements selected")
	}
	capped := SelectMeasurements(g.Dataset, from, to, SelectionCriteria{Max: 5})
	if len(capped) != 5 {
		t.Errorf("capped = %d", len(capped))
	}
	nonlin := SelectMeasurements(g.Dataset, from, to, SelectionCriteria{ExcludeLinear: true})
	if len(nonlin) >= len(all) {
		t.Errorf("ExcludeLinear should drop the linear net in/out pairs (%d vs %d)", len(nonlin), len(all))
	}
	for _, id := range nonlin {
		if id.Metric == simulator.MetricNetIn || id.Metric == simulator.MetricNetOut {
			t.Errorf("linear measurement %s survived ExcludeLinear", id)
		}
	}
}

func TestSelectPerMachine(t *testing.T) {
	env := testEnv(t)
	g := env.Group("A")
	from, to := timeseries.TrainingSplit(2)
	ids := SelectPerMachine(g.Dataset, from, to, 2)
	if len(ids) != 2*5 {
		t.Fatalf("selected = %d, want 10", len(ids))
	}
	perMachine := map[string]int{}
	for _, id := range ids {
		perMachine[id.Machine]++
	}
	for m, n := range perMachine {
		if n != 2 {
			t.Errorf("machine %s has %d selections", m, n)
		}
	}
}

func TestSubset(t *testing.T) {
	env := testEnv(t)
	g := env.Group("A")
	ids := g.Dataset.IDs()[:3]
	sub := Subset(g.Dataset, ids)
	if sub.Len() != 3 {
		t.Errorf("subset = %d", sub.Len())
	}
	if Subset(g.Dataset, []timeseries.MeasurementID{{Machine: "nope"}}).Len() != 0 {
		t.Error("unknown IDs should be skipped")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", "1")
	tab.AddRowf("y\t%.1f", 2.0)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"## demo", "a  b", "x  1", "y  2.0", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "a,b\nx,1\n") {
		t.Errorf("csv = %q", buf.String())
	}
	// Quoting.
	q := &Table{Columns: []string{"v"}}
	q.AddRow(`say "hi", ok`)
	buf.Reset()
	if err := q.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(buf.String(), `"say ""hi"", ok"`) {
		t.Errorf("csv quoting = %q", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 0, 1)
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline runes = %d", len([]rune(s)))
	}
	if !strings.HasPrefix(s, "▁") || !strings.HasSuffix(s, "█") {
		t.Errorf("sparkline = %q", s)
	}
	if Sparkline([]float64{math.NaN()}, 0, 1) != " " {
		t.Error("NaN should render as space")
	}
	if Sparkline([]float64{5}, 3, 3) == "" {
		t.Error("degenerate scale should still render")
	}
	if AutoSparkline([]float64{math.NaN(), math.NaN()}) != "  " {
		t.Error("all-NaN auto sparkline should be blank")
	}
}

func TestDownsample(t *testing.T) {
	v := []float64{1, 3, 5, 7}
	d := Downsample(v, 2)
	if len(d) != 2 || d[0] != 2 || d[1] != 6 {
		t.Errorf("Downsample = %v", d)
	}
	same := Downsample(v, 10)
	if len(same) != 4 {
		t.Errorf("no-op downsample = %v", same)
	}
	same[0] = 99
	if v[0] == 99 {
		t.Error("Downsample should copy")
	}
	n := Downsample([]float64{math.NaN(), math.NaN(), 4, 4}, 2)
	if !math.IsNaN(n[0]) || n[1] != 4 {
		t.Errorf("NaN downsample = %v", n)
	}
}

func TestQuarterMeansAndDailyMeans(t *testing.T) {
	day := timeseries.TestStart
	var tl []ScoredSample
	for h := 0; h < 24; h++ {
		tl = append(tl, ScoredSample{Time: day.Add(time.Duration(h) * time.Hour), Score: float64(h / 6)})
	}
	qm := QuarterMeans(tl)
	for q := 0; q < 4; q++ {
		if qm[q] != float64(q) {
			t.Errorf("quarter %d = %g", q, qm[q])
		}
	}
	tl = append(tl, ScoredSample{Time: day.AddDate(0, 0, 1), Score: 10})
	days, means := DailyMeans(tl)
	if len(days) != 2 || means[1] != 10 {
		t.Errorf("daily means = %v %v", days, means)
	}
	var empty [4]float64 = QuarterMeans(nil)
	for _, v := range empty {
		if !math.IsNaN(v) {
			t.Error("empty quarters should be NaN")
		}
	}
}

func TestEvaluateDetection(t *testing.T) {
	day := timeseries.TestStart
	truth := &simulator.GroundTruth{Faults: []simulator.Fault{{
		ID: "f", Machine: "m", Kind: simulator.FaultLevelShift,
		Start: day.Add(2 * time.Hour), End: day.Add(3 * time.Hour),
	}}}
	var tl []ScoredSample
	for i := 0; i < 60; i++ {
		tm := day.Add(time.Duration(i) * 6 * time.Minute)
		score := 0.95
		if truth.Faults[0].ActiveAt(tm) {
			score = 0.2
		}
		tl = append(tl, ScoredSample{Time: tm, Score: score})
	}
	m := EvaluateDetection(tl, truth, 0.5)
	if m.Events != 1 || m.Detected != 1 {
		t.Errorf("events/detected = %d/%d", m.Events, m.Detected)
	}
	if m.Recall() != 1 {
		t.Errorf("recall = %g", m.Recall())
	}
	if m.FalseAlarmRate != 0 {
		t.Errorf("false alarms = %g", m.FalseAlarmRate)
	}
	if m.MeanDelay != 0 {
		t.Errorf("delay = %v", m.MeanDelay)
	}
	if m.FaultMean >= m.NormalMean {
		t.Error("fault mean should be below normal mean")
	}
	// Empty timeline.
	if z := EvaluateDetection(nil, truth, 0.5); z.Events != 0 || z.Recall() != 1 {
		t.Errorf("empty detection = %+v", z)
	}
}

func TestFig05AndFig11AreExact(t *testing.T) {
	f5raw, err := Fig05PriorMatrix()
	f5 := figure(t, f5raw, err)
	if len(f5.Tables[0].Rows) != 9 {
		t.Error("fig5 should have 9 rows")
	}
	if !strings.Contains(f5.Notes[0], "0.00") {
		t.Errorf("fig5 deviation note = %q, want ~zero deviation", f5.Notes[0])
	}
	f11raw, err := Fig11Fitness()
	f11 := figure(t, f11raw, err)
	if !strings.Contains(f11.Notes[0], "0.000") {
		t.Errorf("fig11 deviation note = %q", f11.Notes[0])
	}
}

func TestFig01(t *testing.T) {
	fraw, err := Fig01RawSeries(testEnv(t))
	f := figure(t, fraw, err)
	if len(f.Tables[0].Rows) != 2 {
		t.Error("fig1 should show two measurements")
	}
}

func TestFig02(t *testing.T) {
	fraw, err := Fig02ScatterShapes(testEnv(t))
	f := figure(t, fraw, err)
	rows := f.Tables[0].Rows
	if rows[0][3] != "linear" {
		t.Errorf("same-machine in/out should classify linear, got %q", rows[0][3])
	}
}

func TestFig07(t *testing.T) {
	fraw, err := Fig07GridAdapt()
	figure(t, fraw, err)
}

func TestFig09(t *testing.T) {
	fraw, err := Fig09Posterior()
	figure(t, fraw, err)
}

func TestClosenessCensus(t *testing.T) {
	fraw, err := ClosenessCensus(testEnv(t))
	f := figure(t, fraw, err)
	if len(f.Tables[0].Rows) == 0 {
		t.Error("census should have distance rows")
	}
}

func TestFig12(t *testing.T) {
	fraw, err := Fig12ProblemDetermination(testEnv(t), 15)
	figure(t, fraw, err)
}

func TestFig13a(t *testing.T) {
	fraw, err := Fig13aOfflineVsAdaptive(testEnv(t), 10)
	figure(t, fraw, err)
}

func TestFig13b(t *testing.T) {
	fraw, err := Fig13bUpdateTime(testEnv(t), 10, 2)
	f := figure(t, fraw, err)
	if len(f.Tables[0].Rows) != 3 {
		t.Error("fig13b should have one row per training size")
	}
}

func TestFig14(t *testing.T) {
	fraw, err := Fig14Localization(testEnv(t), 4, 5, 10)
	figure(t, fraw, err)
}

func TestFig15(t *testing.T) {
	fraw, err := Fig15Periodic(testEnv(t), 10)
	figure(t, fraw, err)
}

func TestFig16(t *testing.T) {
	fraw, err := Fig16TrainingSize(testEnv(t), 10)
	figure(t, fraw, err)
}

func TestBaselineComparison(t *testing.T) {
	fraw, err := BaselineComparison(testEnv(t))
	f := figure(t, fraw, err)
	if len(f.Tables[0].Rows) != 6 { // 2 scenarios × 3 detectors
		t.Errorf("baseline rows = %d", len(f.Tables[0].Rows))
	}
}

func TestAblation(t *testing.T) {
	fraw, err := Ablation(testEnv(t))
	f := figure(t, fraw, err)
	if len(f.Tables[0].Rows) != 10 {
		t.Errorf("ablation rows = %d", len(f.Tables[0].Rows))
	}
}

func TestRegistry(t *testing.T) {
	ids := GeneratorIDs()
	if len(ids) != 17 {
		t.Errorf("generators = %d", len(ids))
	}
	if _, err := RunFigure(testEnv(t), "nope"); err == nil {
		t.Error("unknown figure: want error")
	}
	f, err := RunFigure(testEnv(t), "fig11")
	if err != nil || f.ID != "fig11" {
		t.Errorf("RunFigure = %v, %v", f, err)
	}
}

func TestFaultKindSweep(t *testing.T) {
	fraw, err := FaultKindSweep(testEnv(t))
	f := figure(t, fraw, err)
	if len(f.Tables[0].Rows) != len(simulator.FaultKinds()) {
		t.Errorf("rows = %d, want one per fault kind", len(f.Tables[0].Rows))
	}
}

func TestWriteMarkdownReport(t *testing.T) {
	f5, err := Fig05PriorMatrix()
	if err != nil {
		t.Fatalf("Fig05: %v", err)
	}
	f11, err := Fig11Fitness()
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	var buf bytes.Buffer
	env := testEnv(t)
	if err := WriteMarkdownReport(&buf, "test report", env, []*Figure{f5, f11}); err != nil {
		t.Fatalf("WriteMarkdownReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# test report",
		"## fig5 —",
		"## fig11 —",
		"| c1 |",        // markdown table header cells
		"| 21.98 |",     // Figure-5 corner value
		"[fig5](#fig5)", // table of contents
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Count(out, "|---|") == 0 {
		t.Error("report should contain markdown table separators")
	}
}

func TestReportTitle(t *testing.T) {
	got := ReportTitle(timeseries.Date(2008, time.June, 13))
	if !strings.Contains(got, "2008-06-13") {
		t.Errorf("title = %q", got)
	}
}

func TestTimeConditionedExtension(t *testing.T) {
	fraw, err := TimeConditionedExtension(testEnv(t), 4)
	f := figure(t, fraw, err)
	if len(f.Tables[0].Rows) != 2 {
		t.Errorf("rows = %d", len(f.Tables[0].Rows))
	}
}
