package eval

import (
	"math"
	"time"

	"mcorr/internal/manager"
	"mcorr/internal/simulator"
)

// DetectionMetrics summarizes how well a fitness timeline flags the
// injected ground-truth problems.
type DetectionMetrics struct {
	// Events is the number of distinct ground-truth fault windows that
	// overlap the evaluated period.
	Events int
	// Detected is how many of those windows contain at least one sample
	// whose score fell below the threshold.
	Detected int
	// FalseAlarmRate is the fraction of normal (non-fault) samples that
	// breached the threshold.
	FalseAlarmRate float64
	// MeanDelay is the average time from fault start to the first
	// breaching sample, over detected events.
	MeanDelay time.Duration
	// NormalMean and FaultMean are the average scores inside and outside
	// fault windows (the separation the paper's Figure 12 shows).
	NormalMean float64
	FaultMean  float64
}

// Recall returns Detected/Events (1 when there were no events).
func (d DetectionMetrics) Recall() float64 {
	if d.Events == 0 {
		return 1
	}
	return float64(d.Detected) / float64(d.Events)
}

// ScoredSample is one timestamped score of any detector.
type ScoredSample struct {
	Time  time.Time
	Score float64
}

// SystemTimeline extracts (time, Q) samples from manager reports,
// skipping unscored steps.
func SystemTimeline(reports []manager.StepReport) []ScoredSample {
	out := make([]ScoredSample, 0, len(reports))
	for _, r := range reports {
		if !math.IsNaN(r.System) {
			out = append(out, ScoredSample{Time: r.Time, Score: r.System})
		}
	}
	return out
}

// EvaluateDetection scores a timeline against the ground truth: a sample
// alarms when its score < threshold.
func EvaluateDetection(timeline []ScoredSample, truth *simulator.GroundTruth, threshold float64) DetectionMetrics {
	var m DetectionMetrics
	if len(timeline) == 0 {
		return m
	}
	from := timeline[0].Time
	to := timeline[len(timeline)-1].Time

	// Events overlapping the period.
	var events []simulator.Fault
	for _, f := range truth.Faults {
		if f.Start.Before(to) && f.End.After(from) {
			events = append(events, f)
		}
	}
	m.Events = len(events)

	var normalSum, faultSum float64
	var normalN, faultN, falseAlarms int
	firstBreach := make(map[int]time.Time)
	for _, s := range timeline {
		inFault := -1
		for i, f := range events {
			if f.ActiveAt(s.Time) {
				inFault = i
				break
			}
		}
		breach := s.Score < threshold
		if inFault >= 0 {
			faultSum += s.Score
			faultN++
			if breach {
				if _, seen := firstBreach[inFault]; !seen {
					firstBreach[inFault] = s.Time
				}
			}
		} else {
			normalSum += s.Score
			normalN++
			if breach {
				falseAlarms++
			}
		}
	}
	m.Detected = len(firstBreach)
	if normalN > 0 {
		m.FalseAlarmRate = float64(falseAlarms) / float64(normalN)
		m.NormalMean = normalSum / float64(normalN)
	} else {
		m.NormalMean = math.NaN()
	}
	if faultN > 0 {
		m.FaultMean = faultSum / float64(faultN)
	} else {
		m.FaultMean = math.NaN()
	}
	if len(firstBreach) > 0 {
		var total time.Duration
		for i, t := range firstBreach {
			total += t.Sub(events[i].Start)
		}
		m.MeanDelay = total / time.Duration(len(firstBreach))
	}
	return m
}

// QuarterMeans averages a timeline into the paper's four six-hour
// quarters of the day (NaN for empty quarters) — the x-axis of Figures
// 12 and 16.
func QuarterMeans(timeline []ScoredSample) [4]float64 {
	var sums [4]float64
	var counts [4]int
	for _, s := range timeline {
		q := s.Time.UTC().Hour() / 6
		sums[q] += s.Score
		counts[q]++
	}
	var out [4]float64
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// DailyMeans averages a timeline per calendar day, returning days in
// order with their mean scores.
func DailyMeans(timeline []ScoredSample) (days []time.Time, means []float64) {
	var curDay time.Time
	var sum float64
	var n int
	flush := func() {
		if n > 0 {
			days = append(days, curDay)
			means = append(means, sum/float64(n))
		}
		sum, n = 0, 0
	}
	for _, s := range timeline {
		day := s.Time.UTC().Truncate(24 * time.Hour)
		if !day.Equal(curDay) {
			flush()
			curDay = day
		}
		sum += s.Score
		n++
	}
	flush()
	return days, means
}

// Scores extracts the raw score values of a timeline.
func Scores(timeline []ScoredSample) []float64 {
	out := make([]float64, len(timeline))
	for i, s := range timeline {
		out[i] = s.Score
	}
	return out
}
