// Package eval reproduces the paper's evaluation: it builds the three
// simulated infrastructure groups (A, B, C) with ground-truth problems,
// selects measurements by the paper's criteria, and regenerates every
// figure of the evaluation section as numeric tables plus ASCII charts,
// with detection metrics against the injected ground truth.
//
// SelectMeasurements applies the variance filter (coefficient of
// variation) and cap the paper used to pick which measurements to watch;
// EvaluateDetection scores a system-fitness timeline against injected
// fault windows as detected events, detection delay and false-alarm rate.
package eval
