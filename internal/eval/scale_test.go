package eval

import (
	"testing"

	"mcorr/internal/core"
	"mcorr/internal/manager"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// TestPaperScaleSmoke exercises the system near the paper's deployment
// scale — O(100) measurements, thousands of pairwise models — end to end:
// train on one day, score one day, localize. Skipped under -short.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke test skipped in -short mode")
	}
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "S", Machines: 10, Days: 2, Seed: 2024,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	l := ds.Len()
	if l != 80 {
		t.Fatalf("measurements = %d", l)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	mgr, err := manager.New(ds.Slice(timeseries.MonitoringStart, day1), manager.Config{
		Model: core.Config{Adaptive: true, Grid: core.GridConfig{MaxIntervals: 10}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got, want := len(mgr.Pairs()), l*(l-1)/2; got != want {
		t.Fatalf("pairs = %d, want %d", got, want)
	}
	reports, err := mgr.Run(ds, day1, day1.AddDate(0, 0, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(reports) != timeseries.SamplesPerDay {
		t.Fatalf("reports = %d", len(reports))
	}
	mean := mgr.SystemMean()
	if mean < 0.7 || mean > 1 {
		t.Errorf("system fitness at scale = %.3f", mean)
	}
	if got := len(mgr.Localize().Machines); got != 10 {
		t.Errorf("localized machines = %d", got)
	}
}
