package eval

import (
	"fmt"
	"sort"
	"time"

	"mcorr/internal/core"
	"mcorr/internal/manager"
	"mcorr/internal/timeseries"
)

// evalGridConfig bounds per-pair grids so manager-scale experiments stay
// within memory/time budgets (s ≤ 144 cells per pair).
var evalGridConfig = core.GridConfig{MaxIntervals: 12}

// SelectPerMachine picks the top-variance metrics of every machine, so
// machine-level rollups (Figure 14) have coverage everywhere.
func SelectPerMachine(ds *timeseries.Dataset, from, to time.Time, perMachine int) []timeseries.MeasurementID {
	window := ds.Slice(from, to)
	byMachine := make(map[string][]timeseries.MeasurementID)
	for _, id := range window.IDs() {
		byMachine[id.Machine] = append(byMachine[id.Machine], id)
	}
	var out []timeseries.MeasurementID
	for _, ids := range byMachine {
		sort.Slice(ids, func(i, j int) bool {
			return cvOf(window, ids[i]) > cvOf(window, ids[j])
		})
		n := perMachine
		if n > len(ids) {
			n = len(ids)
		}
		out = append(out, ids[:n]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func cvOf(ds *timeseries.Dataset, id timeseries.MeasurementID) float64 {
	mean, std := ds.Get(id).Stats()
	if mean == 0 {
		return 0
	}
	return std / mean
}

// trainGroupManager trains a manager on the group's training split over a
// per-machine measurement selection.
func trainGroupManager(g *Group, trainDays, maxMeasurements int, adaptive bool) (*manager.Manager, []timeseries.MeasurementID, error) {
	trFrom, trTo := timeseries.TrainingSplit(trainDays)
	machines := len(g.Dataset.Machines())
	perMachine := 1
	if machines > 0 && maxMeasurements/machines > 1 {
		perMachine = maxMeasurements / machines
	}
	ids := SelectPerMachine(g.Dataset, trFrom, trTo, perMachine)
	history := Subset(g.Dataset, ids).Slice(trFrom, trTo)
	mgr, err := manager.New(history, manager.Config{
		Model: core.Config{Adaptive: adaptive, Grid: evalGridConfig},
	})
	if err != nil {
		return nil, nil, err
	}
	return mgr, ids, nil
}

// Fig13aOfflineVsAdaptive reproduces Figure 13(a): average system fitness
// for offline vs adaptive models across training sizes {1, 8, 15} days and
// test sizes {1, 5, 9, 13} days (group A).
func Fig13aOfflineVsAdaptive(env *Env, maxMeasurements int) (*Figure, error) {
	if maxMeasurements <= 0 {
		maxMeasurements = 12
	}
	g := env.Group("A")
	trainSizes := []int{1, 8, 15}
	testSizes := []int{1, 5, 9, 13}

	tab := &Table{
		Title:   "Average fitness score Q (group A)",
		Columns: []string{"training", "mode", "test 1d", "test 5d", "test 9d", "test 13d"},
	}
	results := make(map[int]map[bool][]float64) // train → adaptive? → per test size
	for _, tr := range trainSizes {
		results[tr] = make(map[bool][]float64)
		for _, adaptive := range []bool{false, true} {
			mgr, ids, err := trainGroupManager(g, tr, maxMeasurements, adaptive)
			if err != nil {
				return nil, fmt.Errorf("fig13a train %dd adaptive=%v: %w", tr, adaptive, err)
			}
			// Test sizes nest (1 ⊂ 5 ⊂ 9 ⊂ 13 days), so one pass over 13
			// days with running-mean snapshots at each boundary gives all
			// four results.
			from, _ := timeseries.TestSplit(1)
			test := Subset(g.Dataset, ids)
			var means []float64
			cursor := from
			for _, td := range testSizes {
				_, to := timeseries.TestSplit(td)
				if _, err := mgr.Run(test.Slice(cursor, to), cursor, to); err != nil {
					return nil, fmt.Errorf("fig13a run: %w", err)
				}
				cursor = to
				means = append(means, mgr.SystemMean())
			}
			results[tr][adaptive] = means
			mode := "offline"
			if adaptive {
				mode = "adaptive"
			}
			tab.AddRow(fmt.Sprintf("%dd", tr), mode,
				fmt.Sprintf("%.4f", means[0]), fmt.Sprintf("%.4f", means[1]),
				fmt.Sprintf("%.4f", means[2]), fmt.Sprintf("%.4f", means[3]))
		}
	}

	// Shape checks against the paper's claims.
	var notes []string
	adaptiveWins := 0
	total := 0
	for _, tr := range trainSizes {
		for i := range testSizes {
			total++
			if results[tr][true][i] >= results[tr][false][i] {
				adaptiveWins++
			}
		}
	}
	notes = append(notes, fmt.Sprintf("Adaptive ≥ offline in %d of %d (training, test) combinations (the paper: adaptive usually improves, especially with small training sets).", adaptiveWins, total))
	gapSmall := results[1][true][3] - results[1][false][3]
	gapLarge := results[15][true][3] - results[15][false][3]
	if gapSmall > gapLarge {
		notes = append(notes, fmt.Sprintf("The adaptive-vs-offline gap shrinks as training grows: %+.4f at 1 day vs %+.4f at 15 days — matching the paper.", gapSmall, gapLarge))
	} else {
		notes = append(notes, fmt.Sprintf("Gap at 1-day training %+.4f vs 15-day %+.4f.", gapSmall, gapLarge))
	}
	lo, hi := results[1][false][0], results[1][false][0]
	for _, tr := range trainSizes {
		for _, ad := range []bool{false, true} {
			for _, v := range results[tr][ad] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	notes = append(notes, fmt.Sprintf("Fitness range %.3f–%.3f (paper reports 0.8–0.98 on its traces).", lo, hi))
	return &Figure{
		ID:     "fig13a",
		Title:  "Offline vs adaptive average fitness",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}

// Fig13bUpdateTime reproduces Figure 13(b): wall-clock cost of the online
// adaptive update per sample, for each training size.
func Fig13bUpdateTime(env *Env, maxMeasurements, testDays int) (*Figure, error) {
	if maxMeasurements <= 0 {
		maxMeasurements = 12
	}
	if testDays <= 0 {
		testDays = 9
	}
	g := env.Group("A")
	tab := &Table{
		Title:   fmt.Sprintf("Online updating time over a %d-day test (group A)", testDays),
		Columns: []string{"training", "pairs", "rows", "total", "per row", "per pair-sample"},
	}
	var notes []string
	for _, tr := range []int{1, 8, 15} {
		mgr, ids, err := trainGroupManager(g, tr, maxMeasurements, true)
		if err != nil {
			return nil, fmt.Errorf("fig13b train %dd: %w", tr, err)
		}
		from, to := timeseries.TestSplit(testDays)
		test := Subset(g.Dataset, ids).Slice(from, to)
		start := time.Now()
		reports, err := mgr.Run(test, from, to)
		if err != nil {
			return nil, fmt.Errorf("fig13b run: %w", err)
		}
		elapsed := time.Since(start)
		rows := len(reports)
		pairs := len(mgr.Pairs())
		perRow := elapsed / time.Duration(rows)
		perPairSample := elapsed / time.Duration(rows*pairs)
		tab.AddRow(fmt.Sprintf("%dd", tr), fmt.Sprintf("%d", pairs), fmt.Sprintf("%d", rows),
			elapsed.Round(time.Millisecond).String(), perRow.Round(time.Microsecond).String(),
			perPairSample.Round(100*time.Nanosecond).String())
	}
	notes = append(notes,
		"The paper reports < 2.5 ms per sample with ≥ 8 days' training and < 23 ms worst case on 2009 hardware; the shape to reproduce is that updating cost is orders of magnitude below the 6-minute sampling interval, which holds here for entire fleets of pair models at once.")
	return &Figure{
		ID:     "fig13b",
		Title:  "Online updating time",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}

// Fig15Periodic reproduces Figure 15: system fitness over a nine-day test
// (June 13–21) with one day of training — weekly periodicity with higher
// fitness on quiet days.
func Fig15Periodic(env *Env, maxMeasurements int) (*Figure, error) {
	if maxMeasurements <= 0 {
		maxMeasurements = 12
	}
	g := env.Group("A")
	mgr, ids, err := trainGroupManager(g, 1, maxMeasurements, true)
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	from, to := timeseries.TestSplit(9)
	reports, err := mgr.Run(Subset(g.Dataset, ids).Slice(from, to), from, to)
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	timeline := SystemTimeline(reports)
	days, means := DailyMeans(timeline)

	tab := &Table{
		Title:   "Mean system fitness per day (training: 1 day; test: June 13-21, 2008)",
		Columns: []string{"day", "weekday", "mean Q", "weekend"},
	}
	var wkndSum, wkdySum float64
	var wkndN, wkdyN int
	for i, d := range days {
		we := timeseries.IsWeekend(d)
		if we {
			wkndSum += means[i]
			wkndN++
		} else {
			wkdySum += means[i]
			wkdyN++
		}
		tab.AddRow(d.Format("01-02"), d.Weekday().String(), fmt.Sprintf("%.4f", means[i]), fmt.Sprintf("%v", we))
	}
	spark := &Table{
		Title:   "Q over the nine days (downsampled)",
		Columns: []string{"timeline"},
	}
	spark.AddRow(AutoSparkline(Downsample(Scores(timeline), 108)))

	var notes []string
	wknd, wkdy := wkndSum/float64(wkndN), wkdySum/float64(wkdyN)
	if wknd > wkdy {
		notes = append(notes, fmt.Sprintf("Weekend days score higher than weekdays (%.4f vs %.4f): the quieter the system, the more predictable — the paper's periodic pattern.", wknd, wkdy))
	} else {
		notes = append(notes, fmt.Sprintf("WARNING: weekend mean %.4f did not exceed weekday mean %.4f.", wknd, wkdy))
	}
	return &Figure{
		ID:     "fig15",
		Title:  "Q scores for nine days (periodic patterns)",
		Tables: []*Table{tab, spark},
		Notes:  notes,
	}, nil
}

// Fig16TrainingSize reproduces Figure 16: fitness over one test day (June
// 13) for training sizes {1, 8, 15} days — more history stabilizes the
// model through peak hours.
func Fig16TrainingSize(env *Env, maxMeasurements int) (*Figure, error) {
	if maxMeasurements <= 0 {
		maxMeasurements = 12
	}
	g := env.Group("A")
	tab := &Table{
		Title:   "Mean system fitness per six-hour quarter of June 13",
		Columns: []string{"training", "12am-6am", "6am-12pm", "12pm-6pm", "6pm-12am", "day mean", "day min quarter"},
	}
	dayMeans := make(map[int]float64)
	minQuarter := make(map[int]float64)
	for _, tr := range []int{1, 8, 15} {
		mgr, ids, err := trainGroupManager(g, tr, maxMeasurements, true)
		if err != nil {
			return nil, fmt.Errorf("fig16 train %dd: %w", tr, err)
		}
		from, to := timeseries.TestSplit(1)
		reports, err := mgr.Run(Subset(g.Dataset, ids).Slice(from, to), from, to)
		if err != nil {
			return nil, fmt.Errorf("fig16 run: %w", err)
		}
		timeline := SystemTimeline(reports)
		qm := QuarterMeans(timeline)
		mean := mgr.SystemMean()
		dayMeans[tr] = mean
		mq := qm[0]
		for _, v := range qm[1:] {
			if v < mq {
				mq = v
			}
		}
		minQuarter[tr] = mq
		tab.AddRow(fmt.Sprintf("%dd", tr),
			fmt.Sprintf("%.4f", qm[0]), fmt.Sprintf("%.4f", qm[1]),
			fmt.Sprintf("%.4f", qm[2]), fmt.Sprintf("%.4f", qm[3]),
			fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", mq))
	}
	var notes []string
	if dayMeans[15] >= dayMeans[1] && minQuarter[15] >= minQuarter[1] {
		notes = append(notes, "More training history raises and stabilizes the score through peak hours — the paper's Figure 16 (15-day training stays ≥ 0.9 all day on its traces).")
	} else {
		notes = append(notes, fmt.Sprintf("Day means by training size: 1d %.4f, 8d %.4f, 15d %.4f.", dayMeans[1], dayMeans[8], dayMeans[15]))
	}
	return &Figure{
		ID:     "fig16",
		Title:  "Q scores for one day, varying training size",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}

// Ablation sweeps the design choices DESIGN.md calls out: kernel form,
// decay rate w, update rule, and grid resolution, measured by normal-day
// fitness and fault-window separation on group A's event pair.
func Ablation(env *Env) (*Figure, error) {
	g := env.Group("A")
	day := timeseries.TestStart
	trFrom, trTo := timeseries.TrainingSplit(8)
	history, err := g.PairPoints(g.EventPair[0], g.EventPair[1], trFrom, trTo)
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	pts, err := g.PairPoints(g.EventPair[0], g.EventPair[1], day, day.AddDate(0, 0, 1))
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	fault := g.EventFault
	step := g.Dataset.Get(g.EventPair[0]).Step

	variants := []struct {
		label string
		cfg   core.Config
	}{
		{"paper default (harmonic, w=2, kernel-bayes)", core.Config{Adaptive: true}},
		{"w=1.5", core.Config{Adaptive: true, DecayW: 1.5}},
		{"w=4", core.Config{Adaptive: true, DecayW: 4}},
		{"product kernel", core.Config{Adaptive: true, Kernel: core.KernelProduct}},
		{"uniform kernel (no closeness prior)", core.Config{Adaptive: true, Kernel: core.KernelUniform}},
		{"dirichlet updates", core.Config{Adaptive: true, UpdateRule: core.UpdateDirichlet}},
		{"coarse grid (max 5 intervals)", core.Config{Adaptive: true, Grid: core.GridConfig{MaxIntervals: 5}}},
		{"quantile grid (16 bins/axis)", core.Config{Adaptive: true, Grid: core.GridConfig{EqualSplit: 16, MinIntervals: 40, MaxIntervals: 40}}},
		{"no grid growth (λ<0)", core.Config{Adaptive: true, Lambda: -1}},
		{"eager growth (λ=10)", core.Config{Adaptive: true, Lambda: 10}},
	}
	tab := &Table{
		Title:   "Design-choice ablation on group A's event pair (event day)",
		Columns: []string{"variant", "cells", "normal Q", "fault Q", "separation"},
	}
	for _, v := range variants {
		model, err := core.Train(history, v.cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.label, err)
		}
		var normSum, faultSum float64
		var normN, faultN int
		for i, p := range pts {
			tm := day.Add(time.Duration(i) * step)
			res := model.Step(p)
			if !res.Scored {
				continue
			}
			if fault.ActiveAt(tm) {
				faultSum += res.Fitness
				faultN++
			} else {
				normSum += res.Fitness
				normN++
			}
		}
		tab.AddRow(v.label, fmt.Sprintf("%d", model.NumCells()),
			fmt.Sprintf("%.4f", normSum/float64(normN)),
			fmt.Sprintf("%.4f", faultSum/float64(faultN)),
			fmt.Sprintf("%+.4f", normSum/float64(normN)-faultSum/float64(faultN)))
	}
	return &Figure{
		ID:     "ablation",
		Title:  "Ablation of the model's design choices",
		Tables: []*Table{tab},
		Notes: []string{
			"The spatial-closeness prior is the load-bearing design choice: replacing it with a uniform kernel destroys both the normal-fitness level and the separation. The exact decay rate w, the update rule, and the grid resolution are secondary knobs — consistent with the paper presenting them as free parameters.",
		},
	}, nil
}
