package eval

import (
	"fmt"
	"io"
	"sort"
)

// Generator produces one reproduced figure from the environment.
type Generator struct {
	ID          string
	Description string
	Run         func(env *Env) (*Figure, error)
}

// Generators returns every figure generator, in the paper's order, with
// the default parameters.
func Generators() []Generator {
	return []Generator{
		{"fig1", "measurements as time series", Fig01RawSeries},
		{"fig2", "correlation shapes + linear census", Fig02ScatterShapes},
		{"fig5", "prior transition matrix (exact)", func(*Env) (*Figure, error) { return Fig05PriorMatrix() }},
		{"fig7", "grid initialization and online growth", func(*Env) (*Figure, error) { return Fig07GridAdapt() }},
		{"fig9", "prior vs posterior transition distribution", func(*Env) (*Figure, error) { return Fig09Posterior() }},
		{"closeness", "spatial-closeness transition census", ClosenessCensus},
		{"fig11", "fitness score worked example (exact)", func(*Env) (*Figure, error) { return Fig11Fitness() }},
		{"fig12", "problem determination on the event day", func(e *Env) (*Figure, error) { return Fig12ProblemDetermination(e, 15) }},
		{"fig13a", "offline vs adaptive average fitness", func(e *Env) (*Figure, error) { return Fig13aOfflineVsAdaptive(e, 0) }},
		{"fig13b", "online updating time", func(e *Env) (*Figure, error) { return Fig13bUpdateTime(e, 0, 0) }},
		{"fig14", "problem localization across machines", func(e *Env) (*Figure, error) { return Fig14Localization(e, 0, 0, 0) }},
		{"fig15", "periodic patterns over nine days", func(e *Env) (*Figure, error) { return Fig15Periodic(e, 0) }},
		{"fig16", "training size vs one-day fitness", func(e *Env) (*Figure, error) { return Fig16TrainingSize(e, 0) }},
		{"baselines", "comparison with prior-work detectors", BaselineComparison},
		{"faultkinds", "detection quality by fault kind", FaultKindSweep},
		{"timecond", "time-of-day-conditioned matrices (extension)", func(e *Env) (*Figure, error) { return TimeConditionedExtension(e, 8) }},
		{"ablation", "design-choice ablation", Ablation},
	}
}

// GeneratorIDs returns the known figure IDs in order.
func GeneratorIDs() []string {
	gens := Generators()
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.ID
	}
	return out
}

// RunFigure runs the generator with the given ID.
func RunFigure(env *Env, id string) (*Figure, error) {
	for _, g := range Generators() {
		if g.ID == id {
			return g.Run(env)
		}
	}
	known := GeneratorIDs()
	sort.Strings(known)
	return nil, fmt.Errorf("unknown figure %q (known: %v)", id, known)
}

// RunAll runs every generator and renders each figure to w as it
// completes. It returns the figures and the first error encountered
// (after attempting the rest).
func RunAll(env *Env, w io.Writer) ([]*Figure, error) {
	var figures []*Figure
	var firstErr error
	for _, g := range Generators() {
		fig, err := g.Run(env)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", g.ID, err)
			}
			fmt.Fprintf(w, "=== %s FAILED: %v ===\n\n", g.ID, err)
			continue
		}
		figures = append(figures, fig)
		if err := fig.Render(w); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return figures, firstErr
}
