package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid of formatted cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with the matching verb.
func (t *Table) AddRowf(format string, vals ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, vals...), "\t")...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if len(t.Columns) > 0 {
		if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
			return err
		}
		total := len(t.Columns)*2 - 2
		for _, wd := range widths {
			total += wd
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table as CSV (RFC-4180 quoting for cells containing
// commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if len(t.Columns) > 0 {
		if err := writeRow(t.Columns); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Figure is one reproduced paper figure: its tables plus commentary
// comparing the measured shape against the paper's claims.
type Figure struct {
	ID     string
	Title  string
	Tables []*Table
	Notes  []string
}

// Render writes the whole figure as text.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, t := range f.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "%s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
