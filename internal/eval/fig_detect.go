package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"mcorr/internal/baseline"
	"mcorr/internal/core"
	"mcorr/internal/mathx"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// pairTimeline trains a pairwise model on the group's history and scores
// the pair over [from, to). It returns one fitness sample and one
// transition-probability sample per scored transition — the paper's two
// detection signals (the rank-based Q for plots, P(x_t → x_{t+1}) vs δ for
// alarms).
func pairTimeline(g *Group, a, b timeseries.MeasurementID, trainDays int, from, to time.Time, cfg core.Config) (fitness, probs []ScoredSample, model *core.Model, err error) {
	trFrom, trTo := timeseries.TrainingSplit(trainDays)
	history, err := g.PairPoints(a, b, trFrom, trTo)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("pair timeline train: %w", err)
	}
	model, err = core.Train(history, cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("pair timeline train: %w", err)
	}
	pts, err := g.PairPoints(a, b, from, to)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("pair timeline test: %w", err)
	}
	step := g.Dataset.Get(a).Step
	for i, p := range pts {
		res := model.Step(p)
		if res.Scored {
			tm := from.Add(time.Duration(i) * step)
			fitness = append(fitness, ScoredSample{Time: tm, Score: res.Fitness})
			probs = append(probs, ScoredSample{Time: tm, Score: res.Prob})
		}
	}
	return fitness, probs, model, nil
}

// explainWorst retrains the pair model and replays the window up to
// worstAt, returning the model's explanation of that transition — the
// paper's §6 narrative ("values stay within [a,b] & [c,d], an anomalous
// jump to [e,f] & [g,h] is observed").
func explainWorst(g *Group, a, b timeseries.MeasurementID, trainDays int, from time.Time, worstAt time.Time, cfg core.Config) (string, error) {
	trFrom, trTo := timeseries.TrainingSplit(trainDays)
	history, err := g.PairPoints(a, b, trFrom, trTo)
	if err != nil {
		return "", err
	}
	model, err := core.Train(history, cfg)
	if err != nil {
		return "", err
	}
	pts, err := g.PairPoints(a, b, from, worstAt.Add(g.Dataset.Get(a).Step))
	if err != nil {
		return "", err
	}
	step := g.Dataset.Get(a).Step
	for i, p := range pts {
		tm := from.Add(time.Duration(i) * step)
		if tm.Equal(worstAt) {
			ex, ok := model.Explain(p, 1)
			if !ok {
				return "", fmt.Errorf("no position to explain at %v", worstAt)
			}
			if ex.OutOfGrid {
				return fmt.Sprintf("at %s the pair sat in %s; the observation left the previously learned region entirely (an offline model scores it 0; the adaptive model grows its boundary)",
					worstAt.Format("15:04"), ex.From), nil
			}
			return fmt.Sprintf("at %s the pair sat in %s and the model expected %s (p=%.3f); the observed jump to %s ranked %d of %d (Q=%.3f)",
				worstAt.Format("15:04"), ex.From, ex.Expected[0], ex.Expected[0].Prob,
				ex.Observed, ex.Observed.Rank, model.NumCells(), ex.Fitness), nil
		}
		model.Step(p)
	}
	return "", fmt.Errorf("time %v not in window", worstAt)
}

// pairTruth restricts a group's ground truth to faults touching either
// measurement of a pair.
func pairTruth(g *Group, a, b timeseries.MeasurementID) *simulator.GroundTruth {
	out := &simulator.GroundTruth{}
	for _, f := range g.Truth.Faults {
		if f.Matches(a.Machine, a.Metric) || f.Matches(b.Machine, b.Metric) {
			out.Faults = append(out.Faults, f)
		}
	}
	return out
}

// Fig12ProblemDetermination reproduces Figure 12: fitness scores over the
// event day for the three groups' problem pairs, with the ground-truth
// fault windows and detection metrics.
func Fig12ProblemDetermination(env *Env, trainDays int) (*Figure, error) {
	if trainDays <= 0 {
		trainDays = 15
	}
	day := timeseries.TestStart
	// Detection thresholds the rank-based fitness score Q. (The paper's
	// Figure-6 sketch thresholds the raw transition probability against
	// δ, but under the multiplicative updates the posterior concentrates
	// until rare-but-normal moves have astronomically small probability
	// too — the rank statistic is scale-free and robust, which is why
	// the paper's own evaluation plots Q.)
	const qThreshold = 0.5

	quarters := &Table{
		Title:   "Mean fitness per six-hour quarter of the event day",
		Columns: []string{"group", "12am-6am", "6am-12pm", "12pm-6pm", "6pm-12am", "fault window"},
	}
	detect := &Table{
		Title:   fmt.Sprintf("Detection against ground truth (alarm when Q < %.2f)", qThreshold),
		Columns: []string{"group", "events", "detected", "mean delay", "false-alarm rate", "normal mean Q", "fault mean Q", "min Q in fault"},
	}
	spark := &Table{
		Title:   "Fitness over the event day (downsampled sparklines, scale 0..1)",
		Columns: []string{"group", "timeline"},
	}

	var notes []string
	allDetected := true
	dipsInWindow := true
	for _, g := range env.Groups {
		fit, _, _, err := pairTimeline(g, g.EventPair[0], g.EventPair[1], trainDays,
			day, day.AddDate(0, 0, 1), core.Config{Adaptive: true})
		if err != nil {
			return nil, fmt.Errorf("fig12 group %s: %w", g.Name, err)
		}
		qm := QuarterMeans(fit)
		quarters.AddRow("Group "+g.Name,
			fmt.Sprintf("%.3f", qm[0]), fmt.Sprintf("%.3f", qm[1]),
			fmt.Sprintf("%.3f", qm[2]), fmt.Sprintf("%.3f", qm[3]),
			fmt.Sprintf("%s-%s", g.EventFault.Start.Format("15:04"), g.EventFault.End.Format("15:04")))

		truth := pairTruth(g, g.EventPair[0], g.EventPair[1])
		m := EvaluateDetection(fit, truth, qThreshold)
		qStats := m
		minQ := math.Inf(1)
		var minAt time.Time
		for _, s := range fit {
			if g.EventFault.ActiveAt(s.Time) && s.Score < minQ {
				minQ, minAt = s.Score, s.Time
			}
		}
		// The paper's human-debugging narrative: the measurement ranges
		// of the anomalous transition.
		if !minAt.IsZero() {
			story, err := explainWorst(g, g.EventPair[0], g.EventPair[1], trainDays, day, minAt, core.Config{Adaptive: true})
			if err == nil {
				notes = append(notes, fmt.Sprintf("Group %s: %s.", g.Name, story))
			}
		}
		detect.AddRow("Group "+g.Name,
			fmt.Sprintf("%d", m.Events), fmt.Sprintf("%d", m.Detected),
			m.MeanDelay.String(), fmt.Sprintf("%.3f", m.FalseAlarmRate),
			fmt.Sprintf("%.3f", qStats.NormalMean), fmt.Sprintf("%.3f", qStats.FaultMean),
			fmt.Sprintf("%.3f", minQ))
		if m.Detected < m.Events {
			allDetected = false
		}
		if !(minQ < qStats.NormalMean-0.2) {
			dipsInWindow = false
		}
		spark.AddRow("Group "+g.Name, Sparkline(Downsample(Scores(fit), 72), 0, 1))
	}
	switch {
	case allDetected && dipsInWindow:
		notes = append(notes, "All three ground-truth problems are detected inside their windows (morning for A, afternoon for B and C), each producing the paper's deep downward fitness spike.")
	case allDetected:
		notes = append(notes, "All three problems are detected; one group's fitness dip is shallower than the paper's plots.")
	default:
		notes = append(notes, "WARNING: not every injected problem was detected.")
	}
	return &Figure{
		ID:     "fig12",
		Title:  "Fitness scores when system problems occur",
		Tables: []*Table{quarters, spark, detect},
		Notes:  notes,
	}, nil
}

// Fig14Localization reproduces Figure 14: average fitness per machine
// across each group, with the chronically sick machine expected to rank
// worst.
func Fig14Localization(env *Env, trainDays, testDays, measurementsPerGroup int) (*Figure, error) {
	if trainDays <= 0 {
		trainDays = 8
	}
	if testDays <= 0 {
		testDays = 9
	}
	if measurementsPerGroup <= 0 {
		measurementsPerGroup = 24
	}
	tab := &Table{
		Title:   fmt.Sprintf("Average fitness per machine over a %d-day test", testDays),
		Columns: []string{"group", "machines", "sick machine", "suspect (lowest Q)", "sick Q", "median Q", "correct"},
	}
	dist := &Table{
		Title:   "Per-machine score distribution (machines sorted by name; * marks the sick machine)",
		Columns: []string{"group", "scores"},
	}
	var notes []string
	correct := 0
	for _, g := range env.Groups {
		mgr, ids, err := trainGroupManager(g, trainDays, measurementsPerGroup, true)
		if err != nil {
			return nil, fmt.Errorf("fig14 group %s: %w", g.Name, err)
		}
		from, to := timeseries.TestSplit(testDays)
		if _, err := mgr.Run(Subset(g.Dataset, ids).Slice(from, to), from, to); err != nil {
			return nil, fmt.Errorf("fig14 group %s: %w", g.Name, err)
		}
		loc := mgr.Localize()
		var sickQ, median float64
		scores := make([]float64, 0, len(loc.Machines))
		var distCells []string
		for _, ms := range loc.Machines {
			scores = append(scores, ms.Score)
			if ms.Machine == g.SickMachine {
				sickQ = ms.Score
			}
		}
		median = mathx.Quantile(scores, 0.5)
		// Render per machine in name order.
		byName := make(map[string]float64, len(loc.Machines))
		names := make([]string, 0, len(loc.Machines))
		for _, ms := range loc.Machines {
			byName[ms.Machine] = ms.Score
			names = append(names, ms.Machine)
		}
		sort.Strings(names)
		for _, n := range names {
			mark := ""
			if n == g.SickMachine {
				mark = "*"
			}
			distCells = append(distCells, fmt.Sprintf("%s%.2f", mark, byName[n]))
		}
		ok := loc.Suspect() == g.SickMachine
		if ok {
			correct++
		}
		tab.AddRow("Group "+g.Name, fmt.Sprintf("%d", len(loc.Machines)),
			g.SickMachine, loc.Suspect(),
			fmt.Sprintf("%.3f", sickQ), fmt.Sprintf("%.3f", median), fmt.Sprintf("%v", ok))
		dist.AddRow("Group "+g.Name, strings.Join(distCells, " "))
	}
	if correct == len(env.Groups) {
		notes = append(notes, "In every group the chronically faulty machine has the lowest average fitness — the paper's Figure 14 localization story (one clearly low machine per group).")
	} else {
		notes = append(notes, fmt.Sprintf("Localization correct in %d of %d groups.", correct, len(env.Groups)))
	}
	return &Figure{
		ID:     "fig14",
		Title:  "Q scores w.r.t. machine locations (problem localization)",
		Tables: []*Table{tab, dist},
		Notes:  notes,
	}, nil
}

// BaselineComparison is the extension experiment: the paper's model vs the
// two prior-work baselines on the three correlation shapes and on a
// temporal (flapping) anomaly.
func BaselineComparison(env *Env) (*Figure, error) {
	gC := env.Group("C")
	gA := env.Group("A")
	day := timeseries.TestStart
	trainFrom, trainTo := timeseries.TrainingSplit(8)

	type scenario struct {
		label string
		g     *Group
		a, b  timeseries.MeasurementID
	}
	scenarios := []scenario{
		{
			label: "decoupled spike on non-linear pair (A)",
			g:     gA, a: gA.EventPair[0], b: gA.EventPair[1],
		},
		{
			// Machine-wide flapping keeps this pair ON its learned
			// manifold — every individual point is normal, only the
			// transitions are anomalous.
			label: "machine flapping, on-manifold pair (C)",
			g:     gC,
			a:     timeseries.MeasurementID{Machine: gC.EventFault.Machine, Metric: simulator.MetricNetIn},
			b:     timeseries.MeasurementID{Machine: gC.EventFault.Machine, Metric: simulator.MetricNetOut},
		},
	}

	tab := &Table{
		Title:   "Mean detector score inside vs outside the fault window (event day)",
		Columns: []string{"scenario", "detector", "normal", "fault", "separation"},
	}
	var notes []string
	for _, sc := range scenarios {
		history, err := sc.g.PairPoints(sc.a, sc.b, trainFrom, trainTo)
		if err != nil {
			return nil, fmt.Errorf("baselines %s: %w", sc.label, err)
		}
		pts, err := sc.g.PairPoints(sc.a, sc.b, day, day.AddDate(0, 0, 1))
		if err != nil {
			return nil, fmt.Errorf("baselines %s: %w", sc.label, err)
		}
		model, err := core.Train(history, core.Config{Adaptive: false})
		if err != nil {
			return nil, fmt.Errorf("baselines %s: %w", sc.label, err)
		}
		li, err := baseline.TrainLinearInvariant(history, baseline.LinearConfig{})
		if err != nil {
			return nil, fmt.Errorf("baselines %s: %w", sc.label, err)
		}
		gmm, err := baseline.TrainGMMEllipse(history, baseline.GMMEllipseConfig{Seed: 42})
		if err != nil {
			return nil, fmt.Errorf("baselines %s: %w", sc.label, err)
		}
		detectors := []baseline.PairDetector{
			&baseline.TransitionAdapter{Model: model}, li, gmm,
		}
		fault := sc.g.EventFault
		step := sc.g.Dataset.Get(sc.a).Step
		for _, det := range detectors {
			var normSum, faultSum float64
			var normN, faultN int
			det.Reset()
			for i, p := range pts {
				tm := day.Add(time.Duration(i) * step)
				s, ok := det.Step(p)
				if !ok {
					continue
				}
				if fault.ActiveAt(tm) {
					faultSum += s
					faultN++
				} else {
					normSum += s
					normN++
				}
			}
			normal := normSum / float64(normN)
			faultMean := math.NaN()
			if faultN > 0 {
				faultMean = faultSum / float64(faultN)
			}
			tab.AddRow(sc.label, det.Name(),
				fmt.Sprintf("%.3f", normal), fmt.Sprintf("%.3f", faultMean),
				fmt.Sprintf("%+.3f", normal-faultMean))
		}
	}
	notes = append(notes,
		"Separation = normal − fault mean score; larger is better.",
		"The transition model separates both scenarios. The mixture ellipses are blind to the decoupled spike on the non-linear pair (its points still fall inside some cluster) and react only weakly to machine-wide flapping, where each point individually remains in a learned cluster and only the transitions are anomalous — the paper's core argument for modeling temporal correlations. (The ARX invariant reacts to flapping because its one-step prediction also carries temporal state, but it is unusable on non-linear pairs: note its degraded normal-score level.)")
	return &Figure{
		ID:     "baselines",
		Title:  "Comparison with prior-work detectors (linear invariants, GMM ellipses)",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}
