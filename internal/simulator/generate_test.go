package simulator

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mcorr/internal/mathx"
	"mcorr/internal/timeseries"
)

// smallGroup generates a quick 2-day, 6-machine trace for tests.
func smallGroup(t *testing.T, faults ...Fault) (*timeseries.Dataset, *GroundTruth) {
	t.Helper()
	ds, gt, err := Generate(GroupConfig{
		Name: "T", Machines: 6, Days: 2, Seed: 11, Faults: faults,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds, gt
}

func TestGenerateShape(t *testing.T) {
	ds, _ := smallGroup(t)
	if ds.Len() != 6*len(AllMetrics) {
		t.Fatalf("measurements = %d, want %d", ds.Len(), 6*len(AllMetrics))
	}
	id := timeseries.MeasurementID{Machine: MachineName("T", 0), Metric: MetricNetIn}
	s := ds.Get(id)
	if s == nil {
		t.Fatalf("missing series %v", id)
	}
	if s.Len() != 2*timeseries.SamplesPerDay {
		t.Errorf("samples = %d, want %d", s.Len(), 2*timeseries.SamplesPerDay)
	}
	if !s.Start.Equal(timeseries.MonitoringStart) {
		t.Errorf("start = %v", s.Start)
	}
	for _, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite sample generated")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(GroupConfig{Name: "T", Machines: 3, Days: 1, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, _, err := Generate(GroupConfig{Name: "T", Machines: 3, Days: 1, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, id := range a.IDs() {
		sa, sb := a.Get(id), b.Get(id)
		for i := range sa.Values {
			if sa.Values[i] != sb.Values[i] {
				t.Fatalf("series %v differs at %d with the same seed", id, i)
			}
		}
	}
	c, _, err := Generate(GroupConfig{Name: "T", Machines: 3, Days: 1, Seed: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	id := a.IDs()[0]
	same := true
	for i, v := range a.Get(id).Values {
		if c.Get(id).Values[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should generate different traces")
	}
}

func TestGenerateLinearPairSameMachine(t *testing.T) {
	ds, _ := smallGroup(t)
	m := MachineName("T", 1)
	in := ds.Get(timeseries.MeasurementID{Machine: m, Metric: MetricNetIn})
	out := ds.Get(timeseries.MeasurementID{Machine: m, Metric: MetricNetOut})
	r, err := mathx.Pearson(in.Values, out.Values)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if r < 0.95 {
		t.Errorf("in/out octets on one machine should be strongly linear (Fig 2b); Pearson = %.3f", r)
	}
}

func TestGenerateCrossMachineCorrelated(t *testing.T) {
	ds, _ := smallGroup(t)
	a := ds.Get(timeseries.MeasurementID{Machine: MachineName("T", 0), Metric: MetricNetIn})
	b := ds.Get(timeseries.MeasurementID{Machine: MachineName("T", 3), Metric: MetricNetIn})
	r, err := mathx.Pearson(a.Values, b.Values)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if r < 0.5 {
		t.Errorf("cross-machine metrics share the workload; Pearson = %.3f", r)
	}
}

func TestGenerateNonlinearPair(t *testing.T) {
	ds, _ := smallGroup(t)
	m := MachineName("T", 2)
	in := ds.Get(timeseries.MeasurementID{Machine: m, Metric: MetricNetIn})
	cpu := ds.Get(timeseries.MeasurementID{Machine: m, Metric: MetricCPU})
	rp, _ := mathx.Pearson(in.Values, cpu.Values)
	rs, _ := mathx.Spearman(in.Values, cpu.Values)
	// Monotone but saturating: strong rank correlation, imperfect linear
	// correlation (observation noise keeps both below 1).
	if rs < 0.8 {
		t.Errorf("cpu tracks load monotonically; Spearman = %.3f", rs)
	}
	if rp > 0.999 {
		t.Errorf("saturating response should not be perfectly linear; Pearson = %.4f", rp)
	}
}

func TestGenerateWeekendEffect(t *testing.T) {
	ds, _, err := Generate(GroupConfig{Name: "T", Machines: 2, Days: 7,
		Start: timeseries.Date(2008, time.June, 9), Seed: 4}) // Mon..Sun
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	s := ds.Get(timeseries.MeasurementID{Machine: MachineName("T", 0), Metric: MetricNetIn})
	wkdy := s.Slice(timeseries.Date(2008, time.June, 10), timeseries.Date(2008, time.June, 11))
	wknd := s.Slice(timeseries.Date(2008, time.June, 14), timeseries.Date(2008, time.June, 15))
	mw, _ := wkdy.Stats()
	me, _ := wknd.Stats()
	if me >= mw {
		t.Errorf("weekend mean %.1f should be below weekday mean %.1f", me, mw)
	}
}

func TestGenerateStuckValueFault(t *testing.T) {
	day := timeseries.MonitoringStart
	f := Fault{
		ID: "stuck", Machine: MachineName("T", 0), Metric: MetricCPU,
		Kind: FaultStuckValue, Start: day.Add(6 * time.Hour), End: day.Add(9 * time.Hour),
	}
	ds, gt := smallGroup(t, f)
	s := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricCPU})
	window := s.Slice(f.Start, f.End)
	// All raw (pre-noise) values frozen: the observed values differ only
	// by the small observation noise, so variance collapses.
	_, std := window.Stats()
	normal := s.Slice(day.Add(10*time.Hour), day.Add(13*time.Hour))
	_, nstd := normal.Stats()
	if std >= nstd/2 {
		t.Errorf("stuck window std %.3f should be far below normal %.3f", std, nstd)
	}
	if len(gt.Faults) != 1 || !gt.AnyActiveAt(day.Add(7*time.Hour)) {
		t.Error("ground truth should record the fault")
	}
}

func TestGenerateCorrelationBreakFault(t *testing.T) {
	day := timeseries.MonitoringStart.AddDate(0, 0, 1)
	f := Fault{
		ID: "break", Machine: MachineName("T", 1), Metric: MetricNetOut,
		Kind: FaultCorrelationBreak, Start: day.Add(8 * time.Hour), End: day.Add(16 * time.Hour),
	}
	ds, _ := smallGroup(t, f)
	in := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricNetIn})
	out := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricNetOut})
	inW := in.Slice(f.Start, f.End)
	outW := out.Slice(f.Start, f.End)
	rFault, _ := mathx.Pearson(inW.Values, outW.Values)
	inN := in.Slice(day, day.Add(8*time.Hour))
	outN := out.Slice(day, day.Add(8*time.Hour))
	rNormal, _ := mathx.Pearson(inN.Values, outN.Values)
	if rFault >= 0 {
		t.Errorf("correlation break should invert the relation; fault Pearson = %.3f", rFault)
	}
	if rNormal < 0.9 {
		t.Errorf("outside the fault the pair should stay linear; Pearson = %.3f", rNormal)
	}
}

func TestGenerateDecoupledSpikeFault(t *testing.T) {
	day := timeseries.MonitoringStart
	f := MorningFault("dec", MachineName("T", 2), MetricNetOut, FaultDecoupledSpike, day.AddDate(0, 0, 1), 1)
	ds, _ := smallGroup(t, f)
	in := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricNetIn})
	out := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricNetOut})
	inW := in.Slice(f.Start, f.End)
	outW := out.Slice(f.Start, f.End)
	rFault, _ := mathx.Pearson(inW.Values, outW.Values)
	if rFault > 0.5 {
		t.Errorf("decoupled metric should stop tracking its peer; Pearson = %.3f", rFault)
	}
}

func TestGenerateLevelShiftFault(t *testing.T) {
	day := timeseries.MonitoringStart
	f := AfternoonFault("shift", MachineName("T", 3), MetricMemory, FaultLevelShift, day, 2)
	ds, _ := smallGroup(t, f)
	s := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricMemory})
	inW, _ := s.Slice(f.Start, f.End).Stats()
	before, _ := s.Slice(day.Add(10*time.Hour), day.Add(13*time.Hour)).Stats()
	if inW < before*2 {
		t.Errorf("level shift mean %.1f should tower over normal %.1f", inW, before)
	}
}

func TestGenerateRejectsBadFault(t *testing.T) {
	_, _, err := Generate(GroupConfig{Name: "T", Machines: 2, Days: 1, Faults: []Fault{{
		ID: "bad", Machine: "", Kind: FaultStuckValue,
		Start: timeseries.MonitoringStart, End: timeseries.MonitoringStart.Add(time.Hour),
	}}})
	if err == nil {
		t.Error("fault without machine: want error")
	}
}

func TestFaultHelpers(t *testing.T) {
	day := timeseries.Date(2008, time.June, 13)
	m := MorningFault("m", "x", "cpu", FaultStuckValue, day, 1)
	if m.Start.Hour() != 9 || m.End.Hour() != 11 {
		t.Errorf("morning window = %v..%v", m.Start, m.End)
	}
	a := AfternoonFault("a", "x", "", FaultLevelShift, day, 1)
	if a.Start.Hour() != 14 || a.End.Hour() != 16 {
		t.Errorf("afternoon window = %v..%v", a.Start, a.End)
	}
	if !a.Matches("x", "anything") {
		t.Error("empty metric should match all metrics")
	}
	if a.Matches("y", "cpu") {
		t.Error("different machine should not match")
	}
	if !m.ActiveAt(day.Add(10*time.Hour)) || m.ActiveAt(day.Add(11*time.Hour)) {
		t.Error("ActiveAt window is [start, end)")
	}
	gt := GroundTruth{Faults: []Fault{m, a}}
	if got := gt.FaultyMachines(); len(got) != 1 || got[0] != "x" {
		t.Errorf("FaultyMachines = %v", got)
	}
	if got := gt.ActiveAt(day.Add(10*time.Hour), "x", "cpu"); len(got) != 1 || got[0].ID != "m" {
		t.Errorf("ActiveAt = %v", got)
	}
}

func TestFaultValidate(t *testing.T) {
	day := timeseries.Date(2008, time.June, 13)
	ok := Fault{ID: "f", Machine: "m", Kind: FaultLevelShift, Start: day, End: day.Add(time.Hour)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid fault: %v", err)
	}
	cases := []Fault{
		{ID: "no-machine", Kind: FaultLevelShift, Start: day, End: day.Add(time.Hour)},
		{ID: "empty-window", Machine: "m", Kind: FaultLevelShift, Start: day, End: day},
		{ID: "bad-kind", Machine: "m", Kind: FaultKind(99), Start: day, End: day.Add(time.Hour)},
	}
	for _, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("fault %q should fail validation", f.ID)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	kinds := map[FaultKind]string{
		FaultDecoupledSpike:   "decoupled-spike",
		FaultStuckValue:       "stuck-value",
		FaultLevelShift:       "level-shift",
		FaultCorrelationBreak: "correlation-break",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if FaultKind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestGenerateFlappingStaysOnManifold(t *testing.T) {
	day := timeseries.MonitoringStart.AddDate(0, 0, 1)
	f := Fault{
		ID: "flap", Machine: MachineName("T", 4), Metric: "",
		Kind: FaultFlapping, Start: day.Add(8 * time.Hour), End: day.Add(16 * time.Hour),
	}
	ds, _ := smallGroup(t, f)
	in := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricNetIn})
	out := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricNetOut})
	inW := in.Slice(f.Start, f.End)
	outW := out.Slice(f.Start, f.End)
	// Machine-wide flapping keeps same-machine pairs linearly correlated
	// (both metrics see the same flapped load)...
	r, _ := mathx.Pearson(inW.Values, outW.Values)
	if r < 0.9 {
		t.Errorf("flapping should preserve the same-machine correlation; Pearson = %.3f", r)
	}
	// ...but makes consecutive samples jump violently compared to normal.
	jump := func(v []float64) float64 {
		var s float64
		for i := 1; i < len(v); i++ {
			s += math.Abs(v[i] - v[i-1])
		}
		return s / float64(len(v)-1)
	}
	normal := in.Slice(day, day.Add(8*time.Hour))
	if jump(inW.Values) < 3*jump(normal.Values) {
		t.Errorf("flapping jumps %.1f should dwarf normal jumps %.1f",
			jump(inW.Values), jump(normal.Values))
	}
}

func TestGenerateMetricFlapping(t *testing.T) {
	day := timeseries.MonitoringStart.AddDate(0, 0, 1)
	f := Fault{
		ID: "flapm", Machine: MachineName("T", 5), Metric: MetricNetOut,
		Kind: FaultFlapping, Start: day.Add(8 * time.Hour), End: day.Add(16 * time.Hour),
	}
	ds, _ := smallGroup(t, f)
	in := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricNetIn})
	out := ds.Get(timeseries.MeasurementID{Machine: f.Machine, Metric: MetricNetOut})
	inW := in.Slice(f.Start, f.End)
	outW := out.Slice(f.Start, f.End)
	// Single-metric flapping DOES break the pair correlation.
	r, _ := mathx.Pearson(inW.Values, outW.Values)
	if r > 0.7 {
		t.Errorf("metric flapping should weaken the correlation; Pearson = %.3f", r)
	}
}

func TestWalkMetricsIndependentOfWorkload(t *testing.T) {
	ds, _ := smallGroup(t)
	m := MachineName("T", 0)
	load := ds.Get(timeseries.MeasurementID{Machine: m, Metric: MetricNetIn})
	mem := ds.Get(timeseries.MeasurementID{Machine: m, Metric: MetricMemFree})
	r, err := mathx.Pearson(load.Values, mem.Values)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if math.Abs(r) > 0.5 {
		t.Errorf("freeMemPct should be (mostly) workload-independent; Pearson = %.3f", r)
	}
	// The walk stays finite and mean-reverting (no runaway drift).
	lo, hi := mathx.MinMax(mem.Values)
	if math.IsNaN(lo) || hi-lo > 200 {
		t.Errorf("freeMemPct range [%g, %g] looks unbounded", lo, hi)
	}
}

func TestWalkTransferValidate(t *testing.T) {
	if err := Validate(&Walk{Mean: 50, Revert: 0.05, Sigma: 1}); err != nil {
		t.Errorf("valid walk: %v", err)
	}
	if err := Validate(&Walk{Mean: 50, Revert: 0, Sigma: 1}); err == nil {
		t.Error("zero reversion: want error")
	}
	if err := Validate(&Walk{Mean: 50, Revert: 1.5, Sigma: 1}); err == nil {
		t.Error("reversion > 1: want error")
	}
	w := &Walk{Mean: 10, Revert: 0.1, Sigma: 0}
	rng := rand.New(rand.NewSource(1))
	if got := w.Eval(0, rng); got != 10 {
		t.Errorf("noiseless walk starts at its mean, got %g", got)
	}
	if w.Scale() <= 0 {
		t.Error("Scale should be positive")
	}
}
