package simulator

import (
	"fmt"
	"time"
)

// FaultKind classifies an injected problem. Every kind breaks the joint
// behaviour of the affected measurement with its correlated peers — the
// paper's observation that a problem shows up as broken correlations even
// when each metric alone looks plausible.
type FaultKind int

const (
	// FaultDecoupledSpike drives the metric from an independent phantom
	// workload: its values stay in a plausible range but no longer track
	// the machine's real load.
	FaultDecoupledSpike FaultKind = iota + 1
	// FaultStuckValue freezes the metric at its value when the fault
	// began (a wedged collector or crashed daemon).
	FaultStuckValue
	// FaultLevelShift multiplies the metric by (1 + Magnitude): a sudden
	// regime the model has never seen.
	FaultLevelShift
	// FaultCorrelationBreak mirrors the machine load around its recent
	// mean before applying the transfer, turning a positive correlation
	// negative while preserving the marginal distribution.
	FaultCorrelationBreak
	// FaultFlapping alternates the effective load between a low and a
	// high multiple of its true value on every sample. Each individual
	// point stays on the normal correlation manifold — static detectors
	// (regression residuals, mixture ellipses) see nothing — but the
	// sample-to-sample *transitions* become wildly improbable, which is
	// exactly the temporal signal the paper's model captures.
	FaultFlapping
)

// String returns the fault kind's name.
func (k FaultKind) String() string {
	switch k {
	case FaultDecoupledSpike:
		return "decoupled-spike"
	case FaultStuckValue:
		return "stuck-value"
	case FaultLevelShift:
		return "level-shift"
	case FaultCorrelationBreak:
		return "correlation-break"
	case FaultFlapping:
		return "flapping"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injected ground-truth problem.
type Fault struct {
	// ID labels the fault in reports.
	ID string
	// Machine is the affected machine name.
	Machine string
	// Metric restricts the fault to one metric; empty affects every
	// metric on the machine.
	Metric string
	Kind   FaultKind
	Start  time.Time
	End    time.Time
	// Magnitude scales the perturbation (kind-specific; 0 selects 1).
	Magnitude float64
}

// ActiveAt reports whether the fault is in effect at time t.
func (f Fault) ActiveAt(t time.Time) bool {
	return !t.Before(f.Start) && t.Before(f.End)
}

// Matches reports whether the fault applies to the given measurement.
func (f Fault) Matches(machine, metric string) bool {
	return f.Machine == machine && (f.Metric == "" || f.Metric == metric)
}

// Validate checks the fault for usable fields.
func (f Fault) Validate() error {
	if f.Machine == "" {
		return fmt.Errorf("fault %q: no machine", f.ID)
	}
	if !f.End.After(f.Start) {
		return fmt.Errorf("fault %q: empty window [%v, %v)", f.ID, f.Start, f.End)
	}
	switch f.Kind {
	case FaultDecoupledSpike, FaultStuckValue, FaultLevelShift, FaultCorrelationBreak, FaultFlapping:
		return nil
	default:
		return fmt.Errorf("fault %q: unknown kind %d", f.ID, int(f.Kind))
	}
}

// GroundTruth records every injected fault, for evaluating detection and
// localization against what actually happened.
type GroundTruth struct {
	Faults []Fault
}

// AnyActiveAt reports whether any fault is in effect at t.
func (gt *GroundTruth) AnyActiveAt(t time.Time) bool {
	for _, f := range gt.Faults {
		if f.ActiveAt(t) {
			return true
		}
	}
	return false
}

// ActiveAt returns the faults affecting the given measurement at t.
func (gt *GroundTruth) ActiveAt(t time.Time, machine, metric string) []Fault {
	var out []Fault
	for _, f := range gt.Faults {
		if f.ActiveAt(t) && f.Matches(machine, metric) {
			out = append(out, f)
		}
	}
	return out
}

// FaultyMachines returns the distinct machines with at least one fault.
func (gt *GroundTruth) FaultyMachines() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range gt.Faults {
		if !seen[f.Machine] {
			seen[f.Machine] = true
			out = append(out, f.Machine)
		}
	}
	return out
}

// MorningFault builds a fault spanning [09:00, 11:00) of day — the paper's
// Group A problem window shape.
func MorningFault(id, machine, metric string, kind FaultKind, day time.Time, magnitude float64) Fault {
	return Fault{
		ID: id, Machine: machine, Metric: metric, Kind: kind,
		Start: day.Add(9 * time.Hour), End: day.Add(11 * time.Hour), Magnitude: magnitude,
	}
}

// AfternoonFault builds a fault spanning [14:00, 16:00) of day — the
// paper's Group B/C problem window shape.
func AfternoonFault(id, machine, metric string, kind FaultKind, day time.Time, magnitude float64) Fault {
	return Fault{
		ID: id, Machine: machine, Metric: metric, Kind: kind,
		Start: day.Add(14 * time.Hour), End: day.Add(16 * time.Hour), Magnitude: magnitude,
	}
}
