package simulator

import (
	"fmt"
	"math/rand"
	"time"

	"mcorr/internal/timeseries"
)

// GroupConfig describes one simulated infrastructure group (the paper's
// company A, B or C).
type GroupConfig struct {
	// Name labels the group and machines ("A" → machines A-srv-00 ...).
	Name string
	// Machines is the number of servers; default 50 (the paper's scale).
	Machines int
	// Start is the first sample time; default timeseries.MonitoringStart.
	Start time.Time
	// Days is the trace length in whole days; default 30.
	Days int
	// Step is the sampling interval; default timeseries.SampleStep.
	Step time.Duration
	// Seed makes the trace reproducible.
	Seed int64
	// Workload shapes the group-wide request process; zero value selects
	// DefaultWorkload.
	Workload WorkloadConfig
	// Faults are the injected ground-truth problems.
	Faults []Fault
}

func (c GroupConfig) withDefaults() GroupConfig {
	if c.Name == "" {
		c.Name = "A"
	}
	if c.Machines <= 0 {
		c.Machines = 50
	}
	if c.Start.IsZero() {
		c.Start = timeseries.MonitoringStart
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.Step <= 0 {
		c.Step = timeseries.SampleStep
	}
	if c.Workload.Base == 0 {
		c.Workload = DefaultWorkload()
	}
	return c
}

// MachineName returns the canonical name of machine i in a group.
func MachineName(group string, i int) string {
	return fmt.Sprintf("%s-srv-%02d", group, i)
}

// Generate produces the full monitoring dataset for one group plus the
// ground truth of every injected fault. The trace is deterministic in
// cfg.Seed.
func Generate(cfg GroupConfig) (*timeseries.Dataset, *GroundTruth, error) {
	cfg = cfg.withDefaults()
	for _, f := range cfg.Faults {
		if err := f.Validate(); err != nil {
			return nil, nil, fmt.Errorf("generate group %s: %w", cfg.Name, err)
		}
	}

	load, err := NewWorkload(cfg.Workload, cfg.Start, subSeed(cfg.Seed, cfg.Name+"/workload"))
	if err != nil {
		return nil, nil, fmt.Errorf("generate group %s: %w", cfg.Name, err)
	}

	// Build machines deterministically.
	machines := make([]Machine, cfg.Machines)
	rngs := make([]*rand.Rand, cfg.Machines)
	for i := range machines {
		name := MachineName(cfg.Name, i)
		r := rand.New(rand.NewSource(subSeed(cfg.Seed, name)))
		machines[i] = StandardMachine(name, r)
		rngs[i] = r
	}

	ds := timeseries.NewDataset()
	series := make([][]*timeseries.Series, cfg.Machines)
	for i, m := range machines {
		series[i] = make([]*timeseries.Series, len(m.Metrics))
		for j, spec := range m.Metrics {
			s, err := timeseries.NewSeries(
				timeseries.MeasurementID{Machine: m.Name, Metric: spec.Name},
				cfg.Start, cfg.Step)
			if err != nil {
				return nil, nil, fmt.Errorf("generate group %s: %w", cfg.Name, err)
			}
			series[i][j] = s
			ds.Add(s)
		}
	}

	gt := &GroundTruth{Faults: append([]Fault(nil), cfg.Faults...)}
	gen := &generator{cfg: cfg, machines: machines, rngs: rngs, gt: gt}
	n := cfg.Days * int(24*time.Hour/cfg.Step)
	for k := 0; k < n; k++ {
		t := cfg.Start.Add(time.Duration(k) * cfg.Step)
		w := load.Next(t)
		for i := range machines {
			gen.sampleMachine(t, i, w, series[i])
		}
	}
	return ds, gt, nil
}

// generator holds the mutable per-trace state (EWMA loads, stuck values,
// phantom workloads) used while sampling.
type generator struct {
	cfg      GroupConfig
	machines []Machine
	rngs     []*rand.Rand
	gt       *GroundTruth

	meanLoad []float64            // per-machine EWMA of load, for mirroring
	stuck    map[string]float64   // fault ID + metric → frozen value
	phantom  map[string]*Workload // fault ID → independent phantom workload
	flap     map[string]bool      // fault ID (+metric) → flapping phase
}

// flapFactor toggles the flapping phase for key and returns the load
// multiplier for this sample.
func (g *generator) flapFactor(key string, magnitude float64) float64 {
	if g.flap == nil {
		g.flap = make(map[string]bool)
	}
	g.flap[key] = !g.flap[key]
	if magnitude == 0 {
		magnitude = 0.7
	}
	if g.flap[key] {
		return 1 + magnitude
	}
	f := 1 - magnitude
	if f < 0 {
		f = 0
	}
	return f
}

func (g *generator) sampleMachine(t time.Time, i int, groupLoad float64, out []*timeseries.Series) {
	m := g.machines[i]
	rng := g.rngs[i]
	if g.meanLoad == nil {
		g.meanLoad = make([]float64, len(g.machines))
	}
	loadBase := m.LoadShare * groupLoad
	load := loadBase * (1 + rng.NormFloat64()*m.LocalNoise)
	if load < 0 {
		load = 0
	}
	// Machine-wide flapping rescales the load every metric sees this
	// sample, so same-machine pairs stay on their correlation manifold
	// while their transitions become erratic.
	for _, f := range g.gt.Faults {
		if f.Kind == FaultFlapping && f.Metric == "" && f.ActiveAt(t) && f.Machine == m.Name {
			load *= g.flapFactor(f.ID, f.Magnitude)
		}
	}
	// Track a slow mean for the correlation-break mirror.
	if g.meanLoad[i] == 0 {
		g.meanLoad[i] = load
	} else {
		g.meanLoad[i] = 0.995*g.meanLoad[i] + 0.005*load
	}

	peak := groupLoad/g.cfg.Workload.Base - 1
	if peak < 0 {
		peak = 0
	}

	for j, spec := range m.Metrics {
		value := g.metricValue(t, m.Name, spec, load, g.meanLoad[i], rng)
		sigma := spec.NoiseSigma + spec.PeakNoise*peak
		value *= 1 + rng.NormFloat64()*sigma
		out[j].Append(value)
	}
}

// metricValue evaluates one metric, applying any active fault.
func (g *generator) metricValue(t time.Time, machine string, spec MetricSpec, load, meanLoad float64, rng *rand.Rand) float64 {
	for _, f := range g.gt.Faults {
		if !f.ActiveAt(t) || !f.Matches(machine, spec.Name) {
			continue
		}
		if f.Kind == FaultFlapping && f.Metric == "" {
			continue // machine-wide flapping was applied to the load already
		}
		return g.faultyValue(f, spec, load, meanLoad, rng)
	}
	return spec.Transfer.Eval(load, rng)
}

func (g *generator) faultyValue(f Fault, spec MetricSpec, load, meanLoad float64, rng *rand.Rand) float64 {
	mag := f.Magnitude
	if mag == 0 {
		mag = 1
	}
	key := f.ID + "/" + spec.Name
	switch f.Kind {
	case FaultStuckValue:
		if g.stuck == nil {
			g.stuck = make(map[string]float64)
		}
		v, ok := g.stuck[key]
		if !ok {
			v = spec.Transfer.Eval(load, rng)
			g.stuck[key] = v
		}
		return v
	case FaultDecoupledSpike:
		if g.phantom == nil {
			g.phantom = make(map[string]*Workload)
		}
		ph, ok := g.phantom[f.ID]
		if !ok {
			cfg := g.cfg.Workload
			cfg.DiurnalAmplitude = 0 // the phantom ignores the real cycle
			cfg.NoiseSigma = 0.5
			cfg.AR1 = 0.3
			var err error
			ph, err = NewWorkload(cfg, f.Start, subSeed(g.cfg.Seed, "phantom/"+f.ID))
			if err != nil {
				return spec.Transfer.Eval(load, rng) * mag
			}
			g.phantom[f.ID] = ph
		}
		return spec.Transfer.Eval(ph.Next(f.Start)*mag, rng)
	case FaultLevelShift:
		return spec.Transfer.Eval(load, rng) * (1 + mag)
	case FaultCorrelationBreak:
		// Reflect the load around its recent mean; Magnitude amplifies
		// the reflection (1 = pure mirror).
		mirrored := meanLoad - mag*(load-meanLoad)
		if mirrored < 0 {
			mirrored = 0
		}
		return spec.Transfer.Eval(mirrored, rng)
	case FaultFlapping:
		// Metric-specific flapping (machine-wide flapping is applied to
		// the load before transfers run).
		return spec.Transfer.Eval(load*g.flapFactor(key, mag), rng)
	default:
		return spec.Transfer.Eval(load, rng)
	}
}
