package simulator

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseFaultKind(t *testing.T) {
	for _, k := range FaultKinds() {
		got, err := ParseFaultKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseFaultKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseFaultKind("nope"); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestFaultKindsComplete(t *testing.T) {
	if len(FaultKinds()) != 5 {
		t.Errorf("FaultKinds = %d", len(FaultKinds()))
	}
}

func TestParseFault(t *testing.T) {
	f, err := ParseFault("f1", "flapping@A-srv-01@2008-06-13T09:00:00Z@2008-06-13T11:00:00Z@0.7")
	if err != nil {
		t.Fatalf("ParseFault: %v", err)
	}
	if f.ID != "f1" || f.Kind != FaultFlapping || f.Machine != "A-srv-01" || f.Metric != "" {
		t.Errorf("fault = %+v", f)
	}
	if f.Magnitude != 0.7 {
		t.Errorf("magnitude = %g", f.Magnitude)
	}
	if !f.Start.Equal(time.Date(2008, 6, 13, 9, 0, 0, 0, time.UTC)) {
		t.Errorf("start = %v", f.Start)
	}
}

func TestParseFaultWithMetric(t *testing.T) {
	f, err := ParseFault("f2", "stuck-value@m1/cpuUtil@2008-06-13T09:00:00Z@2008-06-13T10:00:00Z")
	if err != nil {
		t.Fatalf("ParseFault: %v", err)
	}
	if f.Machine != "m1" || f.Metric != "cpuUtil" || f.Magnitude != 1 {
		t.Errorf("fault = %+v", f)
	}
}

func TestParseFaultErrors(t *testing.T) {
	cases := []string{
		"flapping@m1", // too few parts
		"bogus@m1@2008-06-13T09:00:00Z@2008-06-13T10:00:00Z",      // bad kind
		"flapping@m1@notatime@2008-06-13T10:00:00Z",               // bad start
		"flapping@m1@2008-06-13T09:00:00Z@never",                  // bad end
		"flapping@m1@2008-06-13T09:00:00Z@2008-06-13T10:00:00Z@x", // bad magnitude
		"flapping@m1@2008-06-13T10:00:00Z@2008-06-13T09:00:00Z",   // empty window
		"flapping@@2008-06-13T09:00:00Z@2008-06-13T10:00:00Z",     // no machine
		"flapping@m@a@b@c@d",                                      // too many parts
	}
	for _, spec := range cases {
		if _, err := ParseFault("x", spec); err == nil {
			t.Errorf("spec %q: want error", spec)
		}
	}
}

func TestGroundTruthJSONRoundTrip(t *testing.T) {
	day := time.Date(2008, 6, 13, 0, 0, 0, 0, time.UTC)
	gt := &GroundTruth{Faults: []Fault{
		MorningFault("m", "srv-1", "cpuUtil", FaultStuckValue, day, 1),
		AfternoonFault("a", "srv-2", "", FaultFlapping, day, 0.7),
	}}
	data, err := json.Marshal(gt)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(data), `"stuck-value"`) {
		t.Errorf("kind should serialize by name: %s", data)
	}
	got, err := LoadGroundTruth(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("LoadGroundTruth: %v", err)
	}
	if len(got.Faults) != 2 || got.Faults[0].Kind != FaultStuckValue || got.Faults[1].Kind != FaultFlapping {
		t.Errorf("round trip = %+v", got.Faults)
	}
	if !got.Faults[0].Start.Equal(gt.Faults[0].Start) {
		t.Error("times should round trip")
	}
}

func TestLoadGroundTruthErrors(t *testing.T) {
	if _, err := LoadGroundTruth(strings.NewReader("not json")); err == nil {
		t.Error("garbage: want error")
	}
	bad := `{"Faults":[{"ID":"x","Machine":"","Kind":"flapping","Start":"2008-06-13T09:00:00Z","End":"2008-06-13T10:00:00Z"}]}`
	if _, err := LoadGroundTruth(strings.NewReader(bad)); err == nil {
		t.Error("invalid fault: want error")
	}
	legacy := `{"Faults":[{"ID":"x","Machine":"m","Kind":2,"Start":"2008-06-13T09:00:00Z","End":"2008-06-13T10:00:00Z"}]}`
	got, err := LoadGroundTruth(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy integer kind: %v", err)
	}
	if got.Faults[0].Kind != FaultStuckValue {
		t.Errorf("legacy kind = %v", got.Faults[0].Kind)
	}
}
