// Package simulator generates synthetic monitoring data with the structure
// the paper's evaluation relies on: a shared, periodic user-request workload
// driving many measurements across many machines, producing linear,
// smoothly non-linear and arbitrarily shaped pairwise correlations; plus
// injected ground-truth faults that break correlations the way the paper's
// "potential problems identified by the system administrators" did.
//
// The paper's data is proprietary (one month of monitoring from three
// companies, ~50 machines each, sampled every 6 minutes). This package is
// the documented substitution: what matters to the model is only the joint
// evolution of measurement pairs, and every relevant property — workload-
// driven correlation, diurnal/weekly periodicity, gradual drift,
// heteroscedastic peak-hour noise, morning/afternoon fault windows — is an
// explicit knob here.
//
// Generation is fully deterministic per seed, so tests and benchmarks that
// compare trajectories across runs (crash recovery, sharding) can rely on
// identical inputs.
package simulator
