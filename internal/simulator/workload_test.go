package simulator

import (
	"testing"
	"time"

	"mcorr/internal/timeseries"
)

func TestNewWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(WorkloadConfig{Base: 0}, time.Now(), 1); err == nil {
		t.Error("zero base: want error")
	}
	if _, err := NewWorkload(WorkloadConfig{Base: 10, AR1: 1}, time.Now(), 1); err == nil {
		t.Error("AR1 = 1: want error")
	}
	if _, err := NewWorkload(WorkloadConfig{Base: 10, AR1: -0.1}, time.Now(), 1); err == nil {
		t.Error("negative AR1: want error")
	}
}

func TestWorkloadDiurnalCycle(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.NoiseSigma = 0
	cfg.BurstProb = 0
	cfg.TrendPerDay = 0
	day := timeseries.Date(2008, time.June, 16) // a Monday
	w, err := NewWorkload(cfg, day, 1)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	night := w.Next(day.Add(2 * time.Hour))
	peak := w.Next(day.Add(14 * time.Hour))
	if peak <= night {
		t.Errorf("peak load %.1f should exceed night load %.1f", peak, night)
	}
	if peak < cfg.Base || night > cfg.Base {
		t.Errorf("peak %.1f / night %.1f should straddle base %.1f", peak, night, cfg.Base)
	}
}

func TestWorkloadWeekendQuieter(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.NoiseSigma = 0
	cfg.BurstProb = 0
	cfg.TrendPerDay = 0
	monday := timeseries.Date(2008, time.June, 16)
	saturday := timeseries.Date(2008, time.June, 14)
	w1, _ := NewWorkload(cfg, monday, 1)
	w2, _ := NewWorkload(cfg, saturday, 1)
	wk := w1.Next(monday.Add(14 * time.Hour))
	we := w2.Next(saturday.Add(14 * time.Hour))
	if we >= wk*0.6 {
		t.Errorf("weekend peak %.1f should be well below weekday peak %.1f", we, wk)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	cfg := DefaultWorkload()
	start := timeseries.MonitoringStart
	a, _ := NewWorkload(cfg, start, 42)
	b, _ := NewWorkload(cfg, start, 42)
	for i := 0; i < 500; i++ {
		tm := start.Add(time.Duration(i) * timeseries.SampleStep)
		if a.Next(tm) != b.Next(tm) {
			t.Fatal("same seed should generate identical workloads")
		}
	}
}

func TestWorkloadNonNegative(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.NoiseSigma = 2 // absurd noise must still clamp at zero
	start := timeseries.MonitoringStart
	w, _ := NewWorkload(cfg, start, 7)
	for i := 0; i < 2000; i++ {
		if v := w.Next(start.Add(time.Duration(i) * timeseries.SampleStep)); v < 0 {
			t.Fatalf("negative load %g", v)
		}
	}
}

func TestWorkloadTrendDrifts(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.NoiseSigma = 0
	cfg.BurstProb = 0
	cfg.TrendPerDay = 0.01
	start := timeseries.Date(2008, time.June, 16)
	w, _ := NewWorkload(cfg, start, 1)
	early := w.Next(start.Add(14 * time.Hour))
	// Same Monday clock time two weeks later.
	late := w.Next(start.AddDate(0, 0, 14).Add(14 * time.Hour))
	if late <= early {
		t.Errorf("trend should grow the load: %.1f → %.1f", early, late)
	}
}

func TestWorkloadBursts(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.NoiseSigma = 0
	cfg.TrendPerDay = 0
	cfg.BurstProb = 1 // force a burst immediately
	start := timeseries.Date(2008, time.June, 16)
	w, _ := NewWorkload(cfg, start, 3)
	base, _ := NewWorkload(WorkloadConfig{
		Base: cfg.Base, DiurnalAmplitude: cfg.DiurnalAmplitude,
		WeekendFactor: cfg.WeekendFactor,
	}, start, 3)
	tm := start.Add(10 * time.Hour)
	if w.Next(tm) <= base.Next(tm) {
		t.Error("a burst should lift the load above the seasonal baseline")
	}
}
