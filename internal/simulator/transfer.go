package simulator

import (
	"fmt"
	"math"
	"math/rand"
)

// Transfer maps the machine's instantaneous load to a metric value. A
// Transfer may carry internal state (e.g. a regime switch) and draw from
// the provided source of randomness; generators call it once per sample in
// time order.
type Transfer interface {
	// Eval returns the metric value for the given load.
	Eval(load float64, rng *rand.Rand) float64
	// Scale returns the metric's characteristic magnitude, used to size
	// fault perturbations.
	Scale() float64
}

// Linear is value = Gain·load + Offset — the paper's Figure 2(b) shape
// (e.g. in- and out-octet rates of the same interface).
type Linear struct {
	Gain   float64
	Offset float64
}

// Eval implements Transfer.
func (l Linear) Eval(load float64, _ *rand.Rand) float64 { return l.Gain*load + l.Offset }

// Scale implements Transfer.
func (l Linear) Scale() float64 { return math.Abs(l.Gain)*1000 + math.Abs(l.Offset) }

// Saturating is value = Cap·(1 − exp(−load/Knee)): a smooth non-linear
// saturation like CPU or port utilization (Figure 2(d)).
type Saturating struct {
	Cap  float64
	Knee float64
}

// Eval implements Transfer.
func (s Saturating) Eval(load float64, _ *rand.Rand) float64 {
	if s.Knee <= 0 {
		return s.Cap
	}
	return s.Cap * (1 - math.Exp(-load/s.Knee))
}

// Scale implements Transfer.
func (s Saturating) Scale() float64 { return math.Abs(s.Cap) }

// Power is value = Coeff·load^Exp, a convex/concave non-linear response
// (Figure 2(c): traffic rates across different machines).
type Power struct {
	Coeff float64
	Exp   float64
}

// Eval implements Transfer.
func (p Power) Eval(load float64, _ *rand.Rand) float64 {
	if load < 0 {
		load = 0
	}
	return p.Coeff * math.Pow(load, p.Exp)
}

// Scale implements Transfer.
func (p Power) Scale() float64 { return math.Abs(p.Coeff) * math.Pow(1000, p.Exp) }

// Regimes switches between two sub-transfers with Markov persistence —
// producing the multi-branch "arbitrary shape" scatter of Figure 2(d)
// (e.g. a batch job toggling on and off).
type Regimes struct {
	A, B Transfer
	// SwitchProb is the per-sample probability of toggling regimes.
	SwitchProb float64
	inB        bool
}

// Eval implements Transfer.
func (r *Regimes) Eval(load float64, rng *rand.Rand) float64 {
	if rng.Float64() < r.SwitchProb {
		r.inB = !r.inB
	}
	if r.inB {
		return r.B.Eval(load, rng)
	}
	return r.A.Eval(load, rng)
}

// Scale implements Transfer.
func (r *Regimes) Scale() float64 { return math.Max(r.A.Scale(), r.B.Scale()) }

// Walk is a mean-reverting random walk with an optional mild load
// coupling — it models metrics that are NOT driven by the user workload
// (free memory, temperature), which real infrastructures have plenty of
// and which keep the paper's "only about half the measurements are linear
// with something" census honest.
type Walk struct {
	// Mean is the level the walk reverts to.
	Mean float64
	// Revert in (0, 1] is the per-sample reversion strength.
	Revert float64
	// Sigma is the per-sample innovation scale.
	Sigma float64
	// LoadCoupling adds LoadCoupling·load to the output (0 = independent).
	LoadCoupling float64
	level        float64
	init         bool
}

// Eval implements Transfer.
func (w *Walk) Eval(load float64, rng *rand.Rand) float64 {
	if !w.init {
		w.level = w.Mean
		w.init = true
	}
	w.level += w.Revert*(w.Mean-w.level) + w.Sigma*rng.NormFloat64()
	return w.level + w.LoadCoupling*load
}

// Scale implements Transfer.
func (w *Walk) Scale() float64 { return math.Abs(w.Mean) + 10*w.Sigma }

// Quantized wraps a transfer and rounds its output onto Step-sized levels,
// like coarse-grained utilization counters.
type Quantized struct {
	Inner Transfer
	Step  float64
}

// Eval implements Transfer.
func (q Quantized) Eval(load float64, rng *rand.Rand) float64 {
	v := q.Inner.Eval(load, rng)
	if q.Step <= 0 {
		return v
	}
	return math.Round(v/q.Step) * q.Step
}

// Scale implements Transfer.
func (q Quantized) Scale() float64 { return q.Inner.Scale() }

// Validate checks a transfer tree for obviously broken parameters.
func Validate(t Transfer) error {
	switch v := t.(type) {
	case Linear:
		if v.Gain == 0 && v.Offset == 0 {
			return fmt.Errorf("linear transfer is identically zero")
		}
	case Saturating:
		if v.Cap <= 0 {
			return fmt.Errorf("saturating transfer cap %g: must be positive", v.Cap)
		}
	case Power:
		if v.Coeff == 0 {
			return fmt.Errorf("power transfer coefficient is zero")
		}
	case *Regimes:
		if v.A == nil || v.B == nil {
			return fmt.Errorf("regimes transfer missing a branch")
		}
		if v.SwitchProb < 0 || v.SwitchProb > 1 {
			return fmt.Errorf("regimes switch probability %g outside [0, 1]", v.SwitchProb)
		}
		if err := Validate(v.A); err != nil {
			return err
		}
		return Validate(v.B)
	case *Walk:
		if v.Revert <= 0 || v.Revert > 1 {
			return fmt.Errorf("walk reversion %g outside (0, 1]", v.Revert)
		}
	case Quantized:
		if v.Inner == nil {
			return fmt.Errorf("quantized transfer missing inner transfer")
		}
		return Validate(v.Inner)
	}
	return nil
}
