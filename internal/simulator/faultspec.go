package simulator

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// MarshalJSON renders the kind as its name, keeping ground-truth files
// human-readable.
func (k FaultKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts either the kind name or the legacy integer form.
func (k *FaultKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		kind, err := ParseFaultKind(name)
		if err != nil {
			return err
		}
		*k = kind
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("fault kind %s: want a name or integer", data)
	}
	*k = FaultKind(n)
	return nil
}

// LoadGroundTruth reads a ground-truth JSON file written by cmd/mcgen.
func LoadGroundTruth(r io.Reader) (*GroundTruth, error) {
	var gt GroundTruth
	if err := json.NewDecoder(r).Decode(&gt); err != nil {
		return nil, fmt.Errorf("load ground truth: %w", err)
	}
	for _, f := range gt.Faults {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("load ground truth: %w", err)
		}
	}
	return &gt, nil
}

// ParseFaultKind parses a fault-kind name as printed by FaultKind.String.
func ParseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "decoupled-spike":
		return FaultDecoupledSpike, nil
	case "stuck-value":
		return FaultStuckValue, nil
	case "level-shift":
		return FaultLevelShift, nil
	case "correlation-break":
		return FaultCorrelationBreak, nil
	case "flapping":
		return FaultFlapping, nil
	default:
		return 0, fmt.Errorf("unknown fault kind %q (want one of decoupled-spike, stuck-value, level-shift, correlation-break, flapping)", s)
	}
}

// FaultKinds lists every kind, for CLIs and sweeps.
func FaultKinds() []FaultKind {
	return []FaultKind{
		FaultDecoupledSpike, FaultStuckValue, FaultLevelShift,
		FaultCorrelationBreak, FaultFlapping,
	}
}

// ParseFault parses the CLI fault spec
//
//	kind@machine[/metric]@start@end[@magnitude]
//
// with RFC3339 timestamps, e.g.
//
//	flapping@A-srv-01@2008-06-13T09:00:00Z@2008-06-13T11:00:00Z@0.7
func ParseFault(id, spec string) (Fault, error) {
	parts := strings.Split(spec, "@")
	if len(parts) != 4 && len(parts) != 5 {
		return Fault{}, fmt.Errorf("fault %q: want kind@machine[/metric]@start@end[@magnitude]", spec)
	}
	kind, err := ParseFaultKind(parts[0])
	if err != nil {
		return Fault{}, fmt.Errorf("fault %q: %w", spec, err)
	}
	machine, metric := parts[1], ""
	if i := strings.IndexByte(machine, '/'); i >= 0 {
		machine, metric = machine[:i], machine[i+1:]
	}
	start, err := time.Parse(time.RFC3339, parts[2])
	if err != nil {
		return Fault{}, fmt.Errorf("fault %q: start: %w", spec, err)
	}
	end, err := time.Parse(time.RFC3339, parts[3])
	if err != nil {
		return Fault{}, fmt.Errorf("fault %q: end: %w", spec, err)
	}
	mag := 1.0
	if len(parts) == 5 {
		mag, err = strconv.ParseFloat(parts[4], 64)
		if err != nil {
			return Fault{}, fmt.Errorf("fault %q: magnitude: %w", spec, err)
		}
	}
	f := Fault{
		ID: id, Machine: machine, Metric: metric,
		Kind: kind, Start: start, End: end, Magnitude: mag,
	}
	if err := f.Validate(); err != nil {
		return Fault{}, err
	}
	return f, nil
}
