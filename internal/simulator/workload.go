package simulator

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mcorr/internal/timeseries"
)

// WorkloadConfig shapes the group-wide user-request process.
type WorkloadConfig struct {
	// Base is the baseline request rate.
	Base float64
	// DiurnalAmplitude scales the daily cycle (peak near 14:00, trough
	// near 02:00) as a fraction of Base.
	DiurnalAmplitude float64
	// WeekendFactor multiplies the workload on Saturdays and Sundays
	// (< 1 reproduces the paper's quieter weekends).
	WeekendFactor float64
	// NoiseSigma is the standard deviation of the AR(1) noise term as a
	// fraction of Base.
	NoiseSigma float64
	// AR1 is the autocorrelation of the noise term in [0, 1).
	AR1 float64
	// BurstProb is the per-sample probability of a flash crowd starting.
	BurstProb float64
	// BurstAmplitude scales a flash crowd as a fraction of Base.
	BurstAmplitude float64
	// BurstDecay is the per-sample geometric decay of an active burst.
	BurstDecay float64
	// TrendPerDay drifts the baseline by this fraction of Base per day —
	// the gradual distribution evolution of the paper's §4.1.
	TrendPerDay float64
}

// DefaultWorkload returns the workload configuration used by the
// experiments: a pronounced diurnal cycle, quieter weekends, occasional
// flash crowds and mild drift.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Base:             1000,
		DiurnalAmplitude: 0.6,
		WeekendFactor:    0.45,
		NoiseSigma:       0.05,
		AR1:              0.7,
		BurstProb:        0.004,
		BurstAmplitude:   0.8,
		BurstDecay:       0.75,
		TrendPerDay:      0.002,
	}
}

// Workload is a stateful generator of the group-wide request rate.
// It is deterministic for a given seed. Not safe for concurrent use.
type Workload struct {
	cfg   WorkloadConfig
	rng   *rand.Rand
	noise float64
	burst float64
	epoch time.Time
}

// NewWorkload returns a workload process anchored at epoch.
func NewWorkload(cfg WorkloadConfig, epoch time.Time, seed int64) (*Workload, error) {
	if cfg.Base <= 0 {
		return nil, fmt.Errorf("workload base %g: must be positive", cfg.Base)
	}
	if cfg.AR1 < 0 || cfg.AR1 >= 1 {
		return nil, fmt.Errorf("workload AR1 %g: must be in [0, 1)", cfg.AR1)
	}
	if cfg.WeekendFactor <= 0 {
		cfg.WeekendFactor = 1
	}
	return &Workload{cfg: cfg, rng: rand.New(rand.NewSource(seed)), epoch: epoch}, nil
}

// Next advances the process to time t and returns the request rate.
// Successive calls must pass non-decreasing times.
func (w *Workload) Next(t time.Time) float64 {
	c := w.cfg
	// Deterministic seasonal components.
	hour := float64(t.UTC().Hour()) + float64(t.UTC().Minute())/60
	diurnal := 1 + c.DiurnalAmplitude*math.Sin((hour-8)*math.Pi/12) // peak ~14:00
	weekly := w.weeklyFactor(t)
	days := t.Sub(w.epoch).Hours() / 24
	trend := 1 + c.TrendPerDay*days

	// Stochastic components.
	w.noise = c.AR1*w.noise + w.rng.NormFloat64()*c.NoiseSigma*math.Sqrt(1-c.AR1*c.AR1)
	if w.rng.Float64() < c.BurstProb {
		w.burst = c.BurstAmplitude * (0.5 + w.rng.Float64())
	} else {
		w.burst *= c.BurstDecay
	}

	load := c.Base * diurnal * weekly * trend * (1 + w.noise + w.burst)
	if load < 0 {
		load = 0
	}
	return load
}

// weeklyFactor returns the weekend damping for t, ramping linearly over
// the first four hours of a day whose weekend-ness differs from the
// previous day's — real traffic shifts gradually, and a hard step at
// midnight would itself read as an (artificial) anomaly.
func (w *Workload) weeklyFactor(t time.Time) float64 {
	fac := func(weekend bool) float64 {
		if weekend {
			return w.cfg.WeekendFactor
		}
		return 1
	}
	cur := timeseries.IsWeekend(t)
	prev := timeseries.IsWeekend(t.Add(-24 * time.Hour))
	if cur == prev {
		return fac(cur)
	}
	const ramp = 4 * time.Hour
	since := t.Sub(t.UTC().Truncate(24 * time.Hour))
	if since >= ramp {
		return fac(cur)
	}
	frac := float64(since) / float64(ramp)
	return fac(prev)*(1-frac) + fac(cur)*frac
}
