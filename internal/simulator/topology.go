package simulator

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Standard metric names generated for every machine. A metric on a machine
// is one measurement in the paper's sense.
const (
	MetricNetIn    = "ifInOctetsRate"
	MetricNetOut   = "ifOutOctetsRate"
	MetricCPU      = "cpuUtil"
	MetricMemory   = "memUtil"
	MetricPortUtil = "currentUtilizationPort"
	MetricIORate   = "ioRate"
	MetricMemFree  = "freeMemPct"
	MetricTemp     = "ambientTempC"
)

// AllMetrics lists the standard per-machine metrics in generation order.
// The last two are (mostly) workload-independent, so roughly half the
// measurements have a linear partner — matching the paper's census.
var AllMetrics = []string{MetricNetIn, MetricNetOut, MetricCPU, MetricMemory, MetricPortUtil, MetricIORate, MetricMemFree, MetricTemp}

// MetricSpec describes how one metric on one machine responds to load.
type MetricSpec struct {
	Name string
	// Transfer maps machine load to the metric value.
	Transfer Transfer
	// NoiseSigma is the relative observation noise floor.
	NoiseSigma float64
	// PeakNoise adds extra relative noise proportional to how far the
	// group workload is above its base — making peak hours harder to
	// predict, as the paper observes in Figure 15/16.
	PeakNoise float64
}

// Machine is one server: a share of the group workload plus a set of
// metrics derived from it.
type Machine struct {
	Name string
	// LoadShare scales the group workload onto this machine.
	LoadShare float64
	// LocalNoise is per-sample relative noise on the machine's load,
	// decorrelating it mildly from the rest of the group.
	LocalNoise float64
	Metrics    []MetricSpec
}

// subSeed derives a stable per-name seed from the group seed.
func subSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%d/%s", seed, name)
	return int64(h.Sum64())
}

// StandardMachine builds a machine with the standard six metrics, with
// per-machine randomized parameters drawn from rng so no two machines are
// identical. The metric set intentionally covers the paper's three
// correlation shapes:
//
//   - ifInOctetsRate vs ifOutOctetsRate: linear (Figure 2(b));
//   - cross-machine traffic rates: smooth non-linear (Figure 2(c),
//     via differing Power exponents);
//   - currentUtilizationPort and ioRate: saturating / regime-switching
//     "arbitrary" shapes (Figure 2(d)).
func StandardMachine(name string, rng *rand.Rand) Machine {
	share := 0.5 + rng.Float64() // 0.5–1.5 of nominal
	inGain := 80 + rng.Float64()*160
	outRatio := 0.6 + rng.Float64()*0.8
	knee := 600 + rng.Float64()*1200
	powExp := 0.5 + rng.Float64()*0.4
	return Machine{
		Name:       name,
		LoadShare:  share,
		LocalNoise: 0.02 + rng.Float64()*0.02,
		Metrics: []MetricSpec{
			{
				Name:       MetricNetIn,
				Transfer:   Linear{Gain: inGain},
				NoiseSigma: 0.02,
				PeakNoise:  0.04,
			},
			{
				Name:       MetricNetOut,
				Transfer:   Linear{Gain: inGain * outRatio},
				NoiseSigma: 0.02,
				PeakNoise:  0.04,
			},
			{
				Name:       MetricCPU,
				Transfer:   Saturating{Cap: 100, Knee: knee},
				NoiseSigma: 0.03,
				PeakNoise:  0.06,
			},
			{
				Name:       MetricMemory,
				Transfer:   Linear{Gain: 0.02 + rng.Float64()*0.02, Offset: 30 + rng.Float64()*20},
				NoiseSigma: 0.01,
				PeakNoise:  0.02,
			},
			{
				Name:       MetricPortUtil,
				Transfer:   Quantized{Inner: Saturating{Cap: 2.16, Knee: 400 + rng.Float64()*400}, Step: 0.004},
				NoiseSigma: 0.01,
				PeakNoise:  0.03,
			},
			{
				Name: MetricIORate,
				Transfer: &Regimes{
					A:          Power{Coeff: 4 + rng.Float64()*4, Exp: powExp},
					B:          Power{Coeff: 12 + rng.Float64()*8, Exp: powExp * 0.7},
					SwitchProb: 0.02,
				},
				NoiseSigma: 0.04,
				PeakNoise:  0.05,
			},
			{
				Name: MetricMemFree,
				Transfer: &Walk{
					Mean:   40 + rng.Float64()*30,
					Revert: 0.02,
					Sigma:  0.4 + rng.Float64()*0.4,
				},
				NoiseSigma: 0.005,
			},
			{
				Name: MetricTemp,
				Transfer: &Walk{
					Mean:         22 + rng.Float64()*6,
					Revert:       0.05,
					Sigma:        0.15,
					LoadCoupling: 0.002 + rng.Float64()*0.002,
				},
				NoiseSigma: 0.005,
			},
		},
	}
}
