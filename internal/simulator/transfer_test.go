package simulator

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearTransfer(t *testing.T) {
	l := Linear{Gain: 2, Offset: 5}
	if got := l.Eval(10, nil); got != 25 {
		t.Errorf("Eval = %g", got)
	}
	if l.Scale() <= 0 {
		t.Error("Scale should be positive")
	}
}

func TestSaturatingTransfer(t *testing.T) {
	s := Saturating{Cap: 100, Knee: 500}
	low := s.Eval(100, nil)
	high := s.Eval(5000, nil)
	if low <= 0 || high <= low {
		t.Errorf("saturating: low %g, high %g", low, high)
	}
	if high > 100 {
		t.Errorf("saturating should cap at 100, got %g", high)
	}
	// The response flattens: equal load increments yield shrinking gains.
	d1 := s.Eval(600, nil) - s.Eval(500, nil)
	d2 := s.Eval(2100, nil) - s.Eval(2000, nil)
	if d2 >= d1 {
		t.Error("saturating transfer should be concave")
	}
	// Degenerate knee returns the cap.
	if got := (Saturating{Cap: 7, Knee: 0}).Eval(3, nil); got != 7 {
		t.Errorf("zero knee Eval = %g", got)
	}
}

func TestPowerTransfer(t *testing.T) {
	p := Power{Coeff: 2, Exp: 0.5}
	if got := p.Eval(25, nil); got != 10 {
		t.Errorf("Eval = %g", got)
	}
	if got := p.Eval(-5, nil); got != 0 {
		t.Errorf("negative load should clamp: %g", got)
	}
}

func TestRegimesSwitches(t *testing.T) {
	r := &Regimes{A: Linear{Gain: 1}, B: Linear{Gain: 100}, SwitchProb: 0.5}
	rng := rand.New(rand.NewSource(5))
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		seen[r.Eval(1, rng)] = true
	}
	if !seen[1] || !seen[100] {
		t.Errorf("both regimes should appear: %v", seen)
	}
	if r.Scale() != 100*1000 {
		t.Errorf("Scale = %g", r.Scale())
	}
}

func TestQuantized(t *testing.T) {
	q := Quantized{Inner: Linear{Gain: 1}, Step: 0.5}
	if got := q.Eval(1.26, nil); got != 1.5 {
		t.Errorf("Eval = %g, want 1.5", got)
	}
	// Zero step disables quantization.
	q0 := Quantized{Inner: Linear{Gain: 1}}
	if got := q0.Eval(1.26, nil); got != 1.26 {
		t.Errorf("Eval = %g", got)
	}
	if q.Scale() != q.Inner.Scale() {
		t.Error("Scale should delegate")
	}
}

func TestValidate(t *testing.T) {
	good := []Transfer{
		Linear{Gain: 1},
		Saturating{Cap: 100, Knee: 10},
		Power{Coeff: 1, Exp: 0.5},
		&Regimes{A: Linear{Gain: 1}, B: Power{Coeff: 2, Exp: 1}, SwitchProb: 0.1},
		Quantized{Inner: Linear{Gain: 2}, Step: 1},
	}
	for _, tr := range good {
		if err := Validate(tr); err != nil {
			t.Errorf("Validate(%T) = %v", tr, err)
		}
	}
	bad := []Transfer{
		Linear{},
		Saturating{Cap: -1},
		Power{},
		&Regimes{A: Linear{Gain: 1}, B: nil},
		&Regimes{A: Linear{Gain: 1}, B: Linear{Gain: 2}, SwitchProb: 2},
		&Regimes{A: Linear{}, B: Linear{Gain: 2}, SwitchProb: 0.1},
		Quantized{},
	}
	for _, tr := range bad {
		if err := Validate(tr); err == nil {
			t.Errorf("Validate(%#v) should fail", tr)
		}
	}
}

func TestSaturatingMonotone(t *testing.T) {
	s := Saturating{Cap: 50, Knee: 100}
	prev := math.Inf(-1)
	for load := 0.0; load < 1000; load += 50 {
		v := s.Eval(load, nil)
		if v < prev {
			t.Fatal("saturating transfer should be monotone")
		}
		prev = v
	}
}
