package baseline

import (
	"fmt"
	"math"

	"mcorr/internal/core"
	"mcorr/internal/mathx"
)

// PairDetector scores a stream of 2-D observations of one measurement
// pair. Score is in [0, 1] — 1 for perfectly expected, 0 for maximally
// anomalous — comparable across detectors. Scored is false while the
// detector is still warming up (e.g. the first observation).
type PairDetector interface {
	// Name identifies the detector in reports.
	Name() string
	// Step consumes the next observation and returns its score.
	Step(p mathx.Point2) (score float64, scored bool)
	// Reset clears stream state (not the trained model).
	Reset()
}

// LinearInvariant is the ARX linear-invariant baseline.
type LinearInvariant struct {
	coef     []float64
	resStd   float64
	fit      mathx.LinearFit
	gate     float64
	prev     mathx.Point2
	armed    bool
	r2       float64
	minValid float64
}

// LinearConfig controls TrainLinearInvariant.
type LinearConfig struct {
	// GateSigmas is the residual band half-width in residual standard
	// deviations; the score decays linearly to 0 at the gate. Default 4.
	GateSigmas float64
	// MinR2 is the training fit quality below which the pair is declared
	// to hold no linear invariant (Valid() returns false). Default 0.5.
	MinR2 float64
}

// TrainLinearInvariant fits the ARX model on history points.
func TrainLinearInvariant(history []mathx.Point2, cfg LinearConfig) (*LinearInvariant, error) {
	if cfg.GateSigmas <= 0 {
		cfg.GateSigmas = 4
	}
	if cfg.MinR2 <= 0 {
		cfg.MinR2 = 0.5
	}
	if len(history) < 8 {
		return nil, fmt.Errorf("linear invariant needs at least 8 points, got %d", len(history))
	}
	xs := make([]float64, len(history))
	ys := make([]float64, len(history))
	for i, p := range history {
		xs[i], ys[i] = p.X, p.Y
	}
	coef, err := mathx.FitARX(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("linear invariant: %w", err)
	}
	// Residual statistics and fit quality of the one-step predictions.
	var res mathx.Online
	var sse, sst float64
	my := mathx.Mean(ys[1:])
	for t := 1; t < len(history); t++ {
		pred := mathx.PredictARX(coef, xs[t], xs[t-1], ys[t-1])
		r := ys[t] - pred
		res.Add(r)
		sse += r * r
		d := ys[t] - my
		sst += d * d
	}
	li := &LinearInvariant{coef: coef, resStd: res.StdDev(), gate: cfg.GateSigmas, minValid: cfg.MinR2}
	if sst > 0 {
		li.r2 = 1 - sse/sst
	} else {
		li.r2 = 1
	}
	if li.resStd == 0 || math.IsNaN(li.resStd) {
		li.resStd = 1e-12
	}
	simple, err := mathx.FitLinear(xs, ys)
	if err == nil {
		li.fit = simple
	}
	return li, nil
}

var _ PairDetector = (*LinearInvariant)(nil)

// Name implements PairDetector.
func (l *LinearInvariant) Name() string { return "linear-invariant" }

// R2 returns the training fit quality of the invariant.
func (l *LinearInvariant) R2() float64 { return l.r2 }

// Valid reports whether the pair actually holds a linear invariant worth
// monitoring (the cited systems prune low-quality invariants).
func (l *LinearInvariant) Valid() bool { return l.r2 >= l.minValid }

// Step implements PairDetector: score 1 at zero residual, decaying
// linearly to 0 at GateSigmas residual standard deviations.
func (l *LinearInvariant) Step(p mathx.Point2) (float64, bool) {
	if !l.armed {
		l.prev = p
		l.armed = true
		return 0, false
	}
	pred := mathx.PredictARX(l.coef, p.X, l.prev.X, l.prev.Y)
	r := math.Abs(p.Y - pred)
	l.prev = p
	score := 1 - r/(l.gate*l.resStd)
	return mathx.Clamp(score, 0, 1), true
}

// Reset implements PairDetector.
func (l *LinearInvariant) Reset() { l.armed = false }

// GMMEllipse is the Gaussian-mixture ellipse baseline.
type GMMEllipse struct {
	mixture *mathx.GMM2
	gate    float64
}

// GMMEllipseConfig controls TrainGMMEllipse.
type GMMEllipseConfig struct {
	// Components is the mixture size; default 3 (the cited work uses a
	// handful of clusters).
	Components int
	// Gate is the squared-Mahalanobis boundary of "inside the ellipse";
	// default 9.21 (χ², 2 dof, 99%).
	Gate float64
	// Seed seeds EM initialization.
	Seed int64
}

// TrainGMMEllipse fits the mixture to history points.
func TrainGMMEllipse(history []mathx.Point2, cfg GMMEllipseConfig) (*GMMEllipse, error) {
	if cfg.Components <= 0 {
		cfg.Components = 3
	}
	if cfg.Gate <= 0 {
		cfg.Gate = 9.21
	}
	m, err := mathx.FitGMM2(history, mathx.GMMConfig{Components: cfg.Components, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("gmm ellipse: %w", err)
	}
	return &GMMEllipse{mixture: m, gate: cfg.Gate}, nil
}

var _ PairDetector = (*GMMEllipse)(nil)

// Name implements PairDetector.
func (g *GMMEllipse) Name() string { return "gmm-ellipse" }

// Mixture returns the fitted mixture.
func (g *GMMEllipse) Mixture() *mathx.GMM2 { return g.mixture }

// Step implements PairDetector: 1 inside the nearest component's gate
// ellipse, decaying as the squared distance grows beyond it. The detector
// is purely spatial, so every observation is scored.
func (g *GMMEllipse) Step(p mathx.Point2) (float64, bool) {
	d := g.mixture.MinMahalanobis(p)
	if d <= g.gate {
		return 1, true
	}
	return mathx.Clamp(g.gate/d, 0, 1), true
}

// Reset implements PairDetector (no stream state).
func (g *GMMEllipse) Reset() {}

// TransitionAdapter exposes the paper's core model as a PairDetector.
type TransitionAdapter struct {
	Model *core.Model
}

var _ PairDetector = (*TransitionAdapter)(nil)

// Name implements PairDetector.
func (a *TransitionAdapter) Name() string { return "transition-probability" }

// Step implements PairDetector using the model's fitness score.
func (a *TransitionAdapter) Step(p mathx.Point2) (float64, bool) {
	res := a.Model.Step(p)
	return res.Fitness, res.Scored
}

// Reset implements PairDetector.
func (a *TransitionAdapter) Reset() { a.Model.Reset() }

// MeanScore replays points through a detector and returns its average
// score over the scored observations (NaN when none were scored).
func MeanScore(d PairDetector, pts []mathx.Point2) float64 {
	var sum float64
	var n int
	for _, p := range pts {
		if s, ok := d.Step(p); ok {
			sum += s
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
