// Package baseline implements the two prior-work detectors the paper
// compares its model against conceptually:
//
//   - LinearInvariant — the ARX linear-invariant model of Jiang et al. [1]
//     and Munawar et al. [2]: fit y_t ≈ a·y_{t−1} + b0·x_t + b1·x_{t−1} + c
//     on history, flag when the residual leaves its training band. Only
//     meaningful for linearly related pairs.
//
//   - GMMEllipse — the Gaussian-mixture ellipse model of Guo et al. [3]:
//     fit a 2-D mixture to history points and gate new points by their
//     Mahalanobis distance to the nearest component. Spatial only — it
//     cannot see temporal anomalies whose points stay inside the clusters.
//
// Both satisfy PairDetector, as does an adapter over the core transition
// model, so the evaluation harness can run them side by side.
package baseline
