package baseline

import (
	"math"
	"math/rand"
	"testing"

	"mcorr/internal/core"
	"mcorr/internal/mathx"
)

// linearPair samples a noisy linear pair driven by a slow random walk.
func linearPair(rng *rand.Rand, n int) []mathx.Point2 {
	pts := make([]mathx.Point2, n)
	x := 50.0
	for i := range pts {
		x += rng.NormFloat64() * 2
		x = mathx.Clamp(x, 5, 100)
		pts[i] = mathx.Point2{X: x, Y: 3*x + 10 + rng.NormFloat64()}
	}
	return pts
}

// arbitraryPair samples a two-regime pair (no single linear relation).
func arbitraryPair(rng *rand.Rand, n int) []mathx.Point2 {
	pts := make([]mathx.Point2, n)
	x := 50.0
	high := false
	for i := range pts {
		if rng.Float64() < 0.02 {
			high = !high
		}
		x += rng.NormFloat64() * 2
		x = mathx.Clamp(x, 5, 100)
		y := 0.5 * x
		if high {
			y = 4 * x
		}
		pts[i] = mathx.Point2{X: x, Y: y + rng.NormFloat64()}
	}
	return pts
}

func TestLinearInvariantTrainValidation(t *testing.T) {
	if _, err := TrainLinearInvariant(nil, LinearConfig{}); err == nil {
		t.Error("empty history: want error")
	}
	if _, err := TrainLinearInvariant(make([]mathx.Point2, 5), LinearConfig{}); err == nil {
		t.Error("too few points: want error")
	}
}

func TestLinearInvariantDetectsResidualBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	li, err := TrainLinearInvariant(linearPair(rng, 2000), LinearConfig{})
	if err != nil {
		t.Fatalf("TrainLinearInvariant: %v", err)
	}
	if !li.Valid() || li.R2() < 0.9 {
		t.Fatalf("linear pair should yield a strong invariant (R2 = %.3f)", li.R2())
	}
	if li.Name() != "linear-invariant" {
		t.Errorf("Name = %q", li.Name())
	}
	// Warm up, then a normal point and a broken point.
	li.Step(mathx.Point2{X: 50, Y: 160})
	normal, ok := li.Step(mathx.Point2{X: 51, Y: 163})
	if !ok || normal < 0.7 {
		t.Errorf("normal score = %.3f, %v", normal, ok)
	}
	li.Reset()
	li.Step(mathx.Point2{X: 50, Y: 160})
	broken, ok := li.Step(mathx.Point2{X: 51, Y: 300}) // way off the line
	if !ok || broken > 0.1 {
		t.Errorf("broken score = %.3f, %v", broken, ok)
	}
}

func TestLinearInvariantFirstStepUnscored(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	li, err := TrainLinearInvariant(linearPair(rng, 500), LinearConfig{})
	if err != nil {
		t.Fatalf("TrainLinearInvariant: %v", err)
	}
	if _, ok := li.Step(mathx.Point2{X: 50, Y: 160}); ok {
		t.Error("first observation should be unscored")
	}
}

func TestLinearInvariantInvalidOnArbitraryPair(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	li, err := TrainLinearInvariant(arbitraryPair(rng, 3000), LinearConfig{})
	if err != nil {
		t.Fatalf("TrainLinearInvariant: %v", err)
	}
	// The two-regime pair has no linear invariant. Either the fit is
	// flagged invalid outright, or at minimum far from clean.
	if li.R2() > 0.95 {
		t.Errorf("two-regime pair fit R2 = %.3f, should not look like a clean invariant", li.R2())
	}
}

func TestGMMEllipseDetectsSpatialOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := TrainGMMEllipse(arbitraryPair(rng, 2000), GMMEllipseConfig{Seed: 7})
	if err != nil {
		t.Fatalf("TrainGMMEllipse: %v", err)
	}
	if g.Name() != "gmm-ellipse" {
		t.Errorf("Name = %q", g.Name())
	}
	if g.Mixture() == nil {
		t.Fatal("Mixture should be exposed")
	}
	inside, ok := g.Step(mathx.Point2{X: 50, Y: 25}) // on the low branch
	if !ok || inside != 1 {
		t.Errorf("inside score = %.3f, %v", inside, ok)
	}
	outlier, ok := g.Step(mathx.Point2{X: 50, Y: 1000})
	if !ok || outlier > 0.2 {
		t.Errorf("outlier score = %.3f, %v", outlier, ok)
	}
	g.Reset() // no-op, must not panic
}

func TestGMMEllipseTrainValidation(t *testing.T) {
	if _, err := TrainGMMEllipse(make([]mathx.Point2, 2), GMMEllipseConfig{}); err == nil {
		t.Error("too few points: want error")
	}
}

// TestTemporalAnomalyOnlyTransitionModelSees is the headline comparison:
// a "flapping" stream alternates between two perfectly valid operating
// points. Every point is inside the trained clusters (GMM is blind) but
// the transitions are wildly improbable (the paper's model alarms).
func TestTemporalAnomalyOnlyTransitionModelSees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	history := arbitraryPair(rng, 4000)
	gmm, err := TrainGMMEllipse(history, GMMEllipseConfig{Seed: 11})
	if err != nil {
		t.Fatalf("TrainGMMEllipse: %v", err)
	}
	model, err := core.Train(history, core.Config{})
	if err != nil {
		t.Fatalf("core.Train: %v", err)
	}
	tr := &TransitionAdapter{Model: model}
	if tr.Name() != "transition-probability" {
		t.Errorf("Name = %q", tr.Name())
	}

	// Flapping stream: jump between a low-x low-branch point and a
	// high-x low-branch point every sample. Both are normal states; the
	// oscillation is not.
	flap := make([]mathx.Point2, 200)
	for i := range flap {
		if i%2 == 0 {
			flap[i] = mathx.Point2{X: 10, Y: 5 + rng.NormFloat64()}
		} else {
			flap[i] = mathx.Point2{X: 95, Y: 47.5 + rng.NormFloat64()}
		}
	}
	gmmScore := MeanScore(gmm, flap)
	trScore := MeanScore(tr, flap)
	if gmmScore < 0.95 {
		t.Errorf("GMM should be blind to flapping (score %.3f)", gmmScore)
	}
	if trScore > gmmScore-0.2 {
		t.Errorf("transition model (%.3f) should score flapping far below GMM (%.3f)", trScore, gmmScore)
	}

	// And on a normal continuation both score high.
	tr.Reset()
	normal := arbitraryPair(rand.New(rand.NewSource(6)), 500)
	if s := MeanScore(tr, normal); s < 0.75 {
		t.Errorf("transition model normal score = %.3f", s)
	}
	if s := MeanScore(gmm, normal); s < 0.9 {
		t.Errorf("GMM normal score = %.3f", s)
	}
}

func TestMeanScoreEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	li, err := TrainLinearInvariant(linearPair(rng, 100), LinearConfig{})
	if err != nil {
		t.Fatalf("TrainLinearInvariant: %v", err)
	}
	if !math.IsNaN(MeanScore(li, nil)) {
		t.Error("MeanScore of empty stream should be NaN")
	}
}
