package discover

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// Sketch is a constant-space streaming estimate of the correlation between
// one pair of measurement series, with best-lag detection over a small lag
// window. It keeps exponentially-decayed co-moments (weight, sums, squared
// sums, and one cross-sum per lag in [−L, +L]) plus value rings of the last
// L+1 samples for the lagged products — so an Update is O(L) and the sketch
// never stores the stream.
//
// A non-finite input (NaN/±Inf) on either side is a monitoring gap: the
// decayed sums age one step but nothing is added, and the value rings are
// cleared so no lagged product ever spans the gap. All arithmetic is a
// deterministic function of the input sequence.
type Sketch struct {
	lags  int     // L: max |lag| scanned
	decay float64 // γ: per-sample decay of every sum

	w, sx, sy, sxx, syy float64
	sxy                 []float64 // 2L+1 entries; index i holds lag i−L

	// Rings of the last L+1 accepted samples (newest at head), with
	// validity flags (false before warm-up and after gaps).
	xr, yr   []float64
	xok, yok []bool
	head     int

	n uint64 // total accepted (non-gap) samples, undecayed
}

// NewSketch builds a sketch scanning lags in [−lags, +lags] with the given
// per-sample decay γ ∈ (0, 1]. lags < 0 is treated as 0; a decay outside
// (0, 1] falls back to 1 (no forgetting).
func NewSketch(lags int, decay float64) *Sketch {
	if lags < 0 {
		lags = 0
	}
	if !(decay > 0 && decay <= 1) {
		decay = 1
	}
	return &Sketch{
		lags:  lags,
		decay: decay,
		sxy:   make([]float64, 2*lags+1),
		xr:    make([]float64, lags+1),
		yr:    make([]float64, lags+1),
		xok:   make([]bool, lags+1),
		yok:   make([]bool, lags+1),
	}
}

// Lags returns the sketch's lag window half-width L.
func (s *Sketch) Lags() int { return s.lags }

// Update feeds one synchronized observation of the pair. Non-finite values
// are gaps (see the type comment).
func (s *Sketch) Update(x, y float64) {
	g := s.decay
	s.w *= g
	s.sx *= g
	s.sy *= g
	s.sxx *= g
	s.syy *= g
	for i := range s.sxy {
		s.sxy[i] *= g
	}
	if !finite(x) || !finite(y) {
		s.clearRings()
		return
	}
	// Push the sample, then add every lagged product available in the
	// rings. at(0) is the sample just pushed.
	s.head = (s.head + 1) % len(s.xr)
	s.xr[s.head], s.xok[s.head] = x, true
	s.yr[s.head], s.yok[s.head] = y, true
	s.w++
	s.sx += x
	s.sy += y
	s.sxx += x * x
	s.syy += y * y
	for lag := -s.lags; lag <= s.lags; lag++ {
		i := lag + s.lags
		if lag >= 0 {
			// x_t against y_{t−lag}: y's past leads x.
			if v, ok := s.yAt(lag); ok {
				s.sxy[i] += x * v
			}
		} else {
			// x_{t−|lag|} against y_t: x's past leads y.
			if v, ok := s.xAt(-lag); ok {
				s.sxy[i] += v * y
			}
		}
	}
	s.n++
}

// xAt returns the x sample from `back` steps ago (0 = newest).
func (s *Sketch) xAt(back int) (float64, bool) {
	i := (s.head - back + len(s.xr)) % len(s.xr)
	return s.xr[i], s.xok[i]
}

// yAt returns the y sample from `back` steps ago (0 = newest).
func (s *Sketch) yAt(back int) (float64, bool) {
	i := (s.head - back + len(s.yr)) % len(s.yr)
	return s.yr[i], s.yok[i]
}

func (s *Sketch) clearRings() {
	for i := range s.xok {
		s.xok[i] = false
		s.yok[i] = false
	}
}

// EffSamples returns the decayed effective sample weight — the number of
// recent samples the sums effectively cover. It converges to 1/(1−γ) on a
// gapless stream and shrinks through gaps.
func (s *Sketch) EffSamples() float64 { return s.w }

// Samples returns the total accepted (non-gap) samples ever observed.
func (s *Sketch) Samples() uint64 { return s.n }

// Corr returns the best Pearson estimate over the lag window and the lag
// it was found at. The estimate at each lag uses the global decayed means
// as the centering term — exact at lag 0, a documented approximation at
// |lag| > 0 (the means of the lag-aligned subsequences are assumed equal
// to the stream means). Candidates are scanned from lag 0 outward, so
// smaller |lag| wins ties deterministically (and +d is preferred over −d).
// Degenerate sketches (no weight, zero variance on either side) return
// (0, 0). The result is always finite and clamped to [−1, 1].
func (s *Sketch) Corr() (r float64, lag int) {
	vx := s.w*s.sxx - s.sx*s.sx
	vy := s.w*s.syy - s.sy*s.sy
	if !(vx > 0) || !(vy > 0) {
		return 0, 0
	}
	den := math.Sqrt(vx) * math.Sqrt(vy)
	if !finite(den) || den == 0 {
		return 0, 0
	}
	best, bestLag := 0.0, 0
	for d := 0; d <= s.lags; d++ {
		for _, l := range [2]int{d, -d} {
			if l == -0 && d == 0 && l != d {
				continue
			}
			if d != 0 || l == 0 {
				c := clamp1((s.w*s.sxy[l+s.lags] - s.sx*s.sy) / den)
				if math.Abs(c) > math.Abs(best) {
					best, bestLag = c, l
				}
			}
			if d == 0 {
				break // lag 0 only once
			}
		}
	}
	return best, bestLag
}

// Merge folds another sketch of the same shape (lags and decay) into the
// receiver. Co-moment sums add — exact when the two sketches observed
// disjoint halves of one stream at comparable decay age, an approximation
// otherwise — and the value rings are taken from whichever side saw more
// samples (ties keep the receiver's), since ring contents from different
// shards cannot interleave meaningfully. Merging a mismatched shape is an
// error and leaves the receiver untouched.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil {
		return nil
	}
	if o.lags != s.lags || o.decay != s.decay {
		return fmt.Errorf("discover: merge shape mismatch: lags %d/%d decay %g/%g",
			s.lags, o.lags, s.decay, o.decay)
	}
	s.w += o.w
	s.sx += o.sx
	s.sy += o.sy
	s.sxx += o.sxx
	s.syy += o.syy
	for i := range s.sxy {
		s.sxy[i] += o.sxy[i]
	}
	if o.n > s.n {
		copy(s.xr, o.xr)
		copy(s.yr, o.yr)
		copy(s.xok, o.xok)
		copy(s.yok, o.yok)
		s.head = o.head
	}
	s.n += o.n
	return nil
}

// sketchState is the gob wire form of a Sketch.
type sketchState struct {
	Lags     int
	Decay    float64
	W        float64
	SX, SY   float64
	SXX, SYY float64
	SXY      []float64
	XR, YR   []float64
	XOK, YOK []bool
	Head     int
	N        uint64
}

// GobEncode implements gob.GobEncoder so sketches nest inside larger
// serialized discovery state.
func (s *Sketch) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	st := sketchState{
		Lags: s.lags, Decay: s.decay,
		W: s.w, SX: s.sx, SY: s.sy, SXX: s.sxx, SYY: s.syy,
		SXY: s.sxy, XR: s.xr, YR: s.yr, XOK: s.xok, YOK: s.yok,
		Head: s.head, N: s.n,
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Sketch) GobDecode(b []byte) error {
	var st sketchState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if st.Lags < 0 || len(st.SXY) != 2*st.Lags+1 ||
		len(st.XR) != st.Lags+1 || len(st.YR) != st.Lags+1 ||
		len(st.XOK) != st.Lags+1 || len(st.YOK) != st.Lags+1 ||
		st.Head < 0 || st.Head > st.Lags {
		return fmt.Errorf("discover: corrupt sketch state")
	}
	*s = Sketch{
		lags: st.Lags, decay: st.Decay,
		w: st.W, sx: st.SX, sy: st.SY, sxx: st.SXX, syy: st.SYY,
		sxy: st.SXY, xr: st.XR, yr: st.YR, xok: st.XOK, yok: st.YOK,
		head: st.Head, n: st.N,
	}
	return nil
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func clamp1(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	case v < -1:
		return -1
	default:
		return v
	}
}
