// Package discover is the correlation-discovery tier: it decides which
// measurement pairs deserve a transition model, so the scoring fabric can
// run a bounded pair graph instead of the paper's full l(l−1)/2.
//
// The package has two layers:
//
//   - Sketch: a constant-space streaming correlation sketch for one pair
//     candidate — exponentially-decayed co-moments plus a small lag window,
//     so one Update is O(lags) and the best-lag Pearson estimate is read
//     out in O(lags) with no sample buffer.
//   - Discoverer: the admission/eviction policy over all candidates. The
//     admitted pairs (at most the configured budget) carry a live sketch
//     each; the remaining candidates are probed in rotating batches, so
//     per-row work is O(l + admitted + probe), never O(l²). At the end of
//     each round the Discoverer evicts admitted pairs whose correlation
//     flat-lined and admits the strongest probed candidates under a
//     top-K-per-anchor preference and the global budget.
//
// Every decision is a deterministic function of the observed row stream
// and the serialized state (MarshalState/UnmarshalState): candidate order
// is the canonical pair order, admission ranking breaks ties canonically,
// and no wall-clock or randomness is consulted. That is what lets a
// durable pipeline checkpoint the discoverer and reproduce the identical
// pair graph — and therefore identical fitness trajectories — after a
// crash.
package discover
