package discover

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSketchOps drives a pair of sketches through a fuzzer-chosen op
// sequence — updates with arbitrary float bit patterns (NaN/Inf/subnormal
// included), merges, gob round-trips — and checks the public invariants:
// Corr is always finite in [−1, 1] with a lag inside the window,
// EffSamples stays finite and non-negative, and a decode of an encode
// reproduces the estimate bit for bit. The input's first two bytes pick
// the lag window and decay so the window edges (L=0, L=max) get explored.
func FuzzSketchOps(f *testing.F) {
	// Seeds: plain stream, NaN/Inf mix, zero variance, max lag window,
	// merge-heavy, decode-heavy.
	f.Add([]byte{0, 200, 1, 0x40, 0x09, 0, 0, 0, 0, 0, 0, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{4, 128, 1, 0x7f, 0xf0, 0, 0, 0, 0, 0, 0, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{2, 255, 1, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0, 1, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{8, 250, 2, 3})
	f.Add([]byte{1, 240, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 2, 3, 2})
	f.Add([]byte{3, 100, 3, 3, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		lags := int(data[0] % 9)              // 0..8, both window edges
		decay := 0.5 + float64(data[1])/512.0 // (0.5, 1.0)
		if data[1] == 255 {
			decay = 1 // exact no-forgetting edge
		}
		a := NewSketch(lags, decay)
		b := NewSketch(lags, decay)
		data = data[2:]

		readF64 := func() (float64, bool) {
			if len(data) < 8 {
				return 0, false
			}
			v := math.Float64frombits(binary.BigEndian.Uint64(data[:8]))
			data = data[8:]
			return v, true
		}
		check := func(s *Sketch) {
			r, lag := s.Corr()
			if math.IsNaN(r) || r < -1 || r > 1 {
				t.Fatalf("Corr r = %g out of [-1,1]", r)
			}
			if lag < -lags || lag > lags {
				t.Fatalf("Corr lag = %d outside window %d", lag, lags)
			}
			if w := s.EffSamples(); math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				t.Fatalf("EffSamples = %g", w)
			}
		}

		steps := 0
		for len(data) > 0 && steps < 4096 {
			steps++
			op := data[0]
			data = data[1:]
			switch op % 4 {
			case 0, 1: // update a or b
				x, ok1 := readF64()
				y, ok2 := readF64()
				if !ok1 {
					x = math.NaN()
				}
				if !ok2 {
					y = x
				}
				if op%4 == 0 {
					a.Update(x, y)
				} else {
					b.Update(x, y)
				}
			case 2: // merge b into a; b restarts
				if err := a.Merge(b); err != nil {
					t.Fatalf("same-shape merge failed: %v", err)
				}
				b = NewSketch(lags, decay)
			case 3: // gob round-trip a, then continue on the copy
				blob, err := a.GobEncode()
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
				var c Sketch
				if err := c.GobDecode(blob); err != nil {
					t.Fatalf("decode of own encode: %v", err)
				}
				r1, l1 := a.Corr()
				r2, l2 := c.Corr()
				if math.Float64bits(r1) != math.Float64bits(r2) || l1 != l2 {
					t.Fatalf("round-trip Corr (%g,%d) != (%g,%d)", r2, l2, r1, l1)
				}
				if c.EffSamples() != a.EffSamples() || c.Samples() != a.Samples() {
					t.Fatal("round-trip samples mismatch")
				}
				a = &c
			}
			check(a)
			check(b)
		}

		// Mismatched shapes must refuse to merge, never corrupt.
		if lags < 8 {
			if err := a.Merge(NewSketch(lags+1, decay)); err == nil {
				t.Fatal("mismatched lag merge must error")
			}
			check(a)
		}
	})
}
