package discover

import (
	"time"

	"mcorr/internal/obs"
)

// Process-global discovery metrics (mcorr_discover_*). Gauges describe the
// bounded pair graph as it stands; counters accumulate policy decisions;
// the histogram tracks the per-row sketch-update cost so operators can see
// what the discovery tier adds to the step path.
var (
	obsCandidatePairs = obs.Default().Gauge("mcorr_discover_candidate_pairs",
		"Full pair-candidate count l(l-1)/2 over the monitored fleet.")
	obsAdmittedPairs = obs.Default().Gauge("mcorr_discover_admitted_pairs",
		"Pairs currently admitted to the bounded graph (carrying a transition model).")
	obsPairBudget = obs.Default().Gauge("mcorr_discover_pair_budget",
		"Configured global pair budget (0 = unlimited, the paper's full graph).")
	obsBudgetOccupancy = obs.Default().Gauge("mcorr_discover_budget_occupancy",
		"Admitted pairs as a fraction of the pair budget (admitted/candidates when unlimited).")
	obsAdmittedTotal = obs.Default().Counter("mcorr_discover_admitted_total",
		"Pairs admitted by the discovery policy since process start (bootstrap included).")
	obsEvictedTotal = obs.Default().Counter("mcorr_discover_evicted_total",
		"Flat-lined pairs evicted by the discovery policy since process start.")
	obsProbeRounds = obs.Default().Counter("mcorr_discover_probe_rounds_total",
		"Discovery rounds completed (each ends one probe batch and applies the admission/eviction policy).")
	obsSketchSeconds = obs.Default().Histogram("mcorr_discover_sketch_update_seconds",
		"Latency of updating every admitted and probe correlation sketch for one row.",
		obs.TimeBuckets())
)

// recordBootstrap publishes the graph-shape gauges after bootstrap,
// recovery, or a SyncAdmitted resync.
func recordBootstrap(d *Discoverer) {
	admitted, budget, candidates := d.BudgetInfo()
	obsCandidatePairs.Set(float64(candidates))
	obsAdmittedPairs.Set(float64(admitted))
	obsPairBudget.Set(float64(budget))
	obsBudgetOccupancy.Set(occupancy(admitted, budget, candidates))
	obsAdmittedTotal.Add(uint64(admitted))
}

// recordRound publishes one round's policy outcome.
func recordRound(d *Discoverer, ch Changes) {
	admitted, budget, candidates := d.BudgetInfo()
	obsAdmittedPairs.Set(float64(admitted))
	obsBudgetOccupancy.Set(occupancy(admitted, budget, candidates))
	obsAdmittedTotal.Add(uint64(len(ch.Admit)))
	obsEvictedTotal.Add(uint64(len(ch.Evict)))
	obsProbeRounds.Inc()
}

func occupancy(admitted, budget, candidates int) float64 {
	den := budget
	if den == 0 {
		den = candidates
	}
	if den == 0 {
		return 0
	}
	return float64(admitted) / float64(den)
}

// updateTimer times one row's sketch-update section.
type updateTimer struct{ start time.Time }

func sketchTimer() updateTimer { return updateTimer{start: time.Now()} }

func (t updateTimer) observe() { obsSketchSeconds.Observe(time.Since(t.start).Seconds()) }
