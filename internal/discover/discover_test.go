package discover

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"mcorr/internal/manager"
	"mcorr/internal/timeseries"
)

// testIDs builds machines×metrics measurement IDs.
func testIDs(machines, metrics int) []timeseries.MeasurementID {
	var ids []timeseries.MeasurementID
	for m := 0; m < machines; m++ {
		for c := 0; c < metrics; c++ {
			ids = append(ids, timeseries.MeasurementID{
				Machine: fmt.Sprintf("m%02d", m),
				Metric:  fmt.Sprintf("c%d", c),
			})
		}
	}
	return ids
}

// corrRows synthesizes rows where all series share one latent driver (so
// every pair is correlated) plus per-series noise.
func corrRows(ids []timeseries.MeasurementID, n int, seed uint64, noise float64) []manager.Row {
	rnd := lcg(seed)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	rows := make([]manager.Row, n)
	for t := 0; t < n; t++ {
		driver := rnd()
		vals := make(map[timeseries.MeasurementID]float64, len(ids))
		for k, id := range ids {
			vals[id] = driver*(1+0.1*float64(k%5)) + noise*rnd()
		}
		rows[t] = manager.Row{Time: start.Add(time.Duration(t) * 5 * time.Minute), Values: vals}
	}
	return rows
}

// indepRows synthesizes rows where every series is independent noise.
func indepRows(ids []timeseries.MeasurementID, n int, seed uint64) []manager.Row {
	rnd := lcg(seed)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	rows := make([]manager.Row, n)
	for t := 0; t < n; t++ {
		vals := make(map[timeseries.MeasurementID]float64, len(ids))
		for _, id := range ids {
			vals[id] = rnd()
		}
		rows[t] = manager.Row{Time: start.Add(time.Duration(t) * 5 * time.Minute), Values: vals}
	}
	return rows
}

func TestCandidateIndexRoundTrip(t *testing.T) {
	ids := testIDs(3, 4) // l = 12
	d, err := New(ids, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l := len(ids)
	if d.NumCandidates() != l*(l-1)/2 {
		t.Fatalf("NumCandidates = %d, want %d", d.NumCandidates(), l*(l-1)/2)
	}
	c := 0
	for i := 0; i < l-1; i++ {
		for j := i + 1; j < l; j++ {
			gi, gj := d.pairAt(c)
			if gi != i || gj != j {
				t.Fatalf("pairAt(%d) = (%d,%d), want (%d,%d)", c, gi, gj, i, j)
			}
			if got := d.candOf(i, j); got != c {
				t.Fatalf("candOf(%d,%d) = %d, want %d", i, j, got, c)
			}
			if got := d.candidateOf(d.pairOf(c)); got != c {
				t.Fatalf("candidateOf(pairOf(%d)) = %d", c, got)
			}
			c++
		}
	}
}

func TestBootstrapRespectsBudgetAndTopK(t *testing.T) {
	ids := testIDs(4, 3) // l = 12, 66 candidates
	rows := corrRows(ids, 200, 11, 0.05)

	d, err := New(ids, Config{Budget: 10, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	admitted := d.Bootstrap(rows)
	if len(admitted) != 10 {
		t.Fatalf("admitted %d pairs, want budget 10", len(admitted))
	}
	got, budget, cand := d.BudgetInfo()
	if got != 10 || budget != 10 || cand != 66 {
		t.Fatalf("BudgetInfo = (%d,%d,%d)", got, budget, cand)
	}
	if !reflect.DeepEqual(admitted, d.Admitted()) {
		t.Fatal("Bootstrap return and Admitted() disagree")
	}
	scores := d.AdmissionScores()
	if len(scores) != 10 {
		t.Fatalf("AdmissionScores has %d entries", len(scores))
	}
	for p, r := range scores {
		if !finite(r) || math.Abs(r) > 1 {
			t.Fatalf("score %g for %s", r, p)
		}
	}
}

func TestBootstrapUnlimitedBudgetAdmitsByTopK(t *testing.T) {
	ids := testIDs(2, 3) // l = 6, 15 candidates
	rows := corrRows(ids, 150, 13, 0.05)
	d, err := New(ids, Config{Budget: 0, TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	admitted := d.Bootstrap(rows)
	// TopK=8 > l−1=5: every correlated candidate admits.
	if len(admitted) != 15 {
		t.Fatalf("admitted %d, want all 15", len(admitted))
	}
}

func TestBootstrapTopKChargingBound(t *testing.T) {
	// Every admission has an endpoint whose degree was < TopK at the
	// time; charging each edge to that endpoint bounds the unlimited-
	// budget graph at TopK·l edges (l−1 reachable at TopK=1, since each
	// edge must consume a fresh vertex).
	ids := testIDs(4, 3) // l = 12
	rows := corrRows(ids, 200, 11, 0.05)
	d, err := New(ids, Config{Budget: 0, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	admitted := d.Bootstrap(rows)
	if len(admitted) > len(ids)-1 {
		t.Fatalf("TopK=1 admitted %d edges, charging bound is %d", len(admitted), len(ids)-1)
	}
	if len(admitted) == 0 {
		t.Fatal("TopK=1 admitted nothing on correlated rows")
	}
}

func TestObserveAdmitsEmergingCorrelation(t *testing.T) {
	ids := testIDs(2, 2) // l = 4, 6 candidates
	d, err := New(ids, Config{Budget: 6, RoundRows: 40, ProbeBatch: 6, MinEffSamples: 8, AdmitAbove: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Start from an empty graph (no bootstrap corpus): every admission
	// must come from the streaming probe path.
	if got := len(d.Bootstrap(nil)); got != 0 {
		t.Fatalf("empty bootstrap admitted %d pairs", got)
	}
	rows := corrRows(ids, 200, 19, 0.02)
	var admitted int
	for _, row := range rows {
		admitted += len(d.Observe(row).Admit)
	}
	after, _, _ := d.BudgetInfo()
	if admitted == 0 || after == 0 {
		t.Fatalf("no streaming admissions on a correlated stream (admitted=%d graph=%d)", admitted, after)
	}
	// Control: an independent stream stays under the AdmitAbove floor.
	ctl, err := New(ids, Config{Budget: 6, RoundRows: 40, ProbeBatch: 6, MinEffSamples: 8, AdmitAbove: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Bootstrap(nil)
	var noise int
	for _, row := range indepRows(ids, 200, 21) {
		noise += len(ctl.Observe(row).Admit)
	}
	if noise != 0 {
		t.Fatalf("independent stream admitted %d pairs over the 0.6 floor", noise)
	}
}

func TestObserveEvictsFlatLinedPairs(t *testing.T) {
	ids := testIDs(2, 2)
	d, err := New(ids, Config{Budget: 6, RoundRows: 30, EvictAfter: 2, MinEffSamples: 8, EvictBelow: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	before := len(d.Bootstrap(corrRows(ids, 150, 23, 0.02)))
	if before == 0 {
		t.Fatal("bootstrap admitted nothing on correlated rows")
	}
	var evicted int
	for _, row := range indepRows(ids, 300, 29) {
		ch := d.Observe(row)
		evicted += len(ch.Evict)
	}
	if evicted == 0 {
		t.Fatal("no evictions after correlation flat-lined")
	}
}

func TestObserveDeterministicAcrossInstances(t *testing.T) {
	ids := testIDs(3, 2)
	cfg := Config{Budget: 8, RoundRows: 25, ProbeBatch: 5}
	boot := corrRows(ids, 120, 31, 0.3)
	stream := append(indepRows(ids, 200, 37), corrRows(ids, 200, 41, 0.05)...)

	run := func() ([]manager.Pair, []Changes) {
		d, err := New(ids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.Bootstrap(boot)
		var all []Changes
		for _, row := range stream {
			if ch := d.Observe(row); !ch.Empty() {
				all = append(all, ch)
			}
		}
		return d.Admitted(), all
	}
	a1, c1 := run()
	a2, c2 := run()
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("admitted sets diverged between identical runs")
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("change streams diverged between identical runs")
	}
}

func TestStateRoundTripContinuesIdentically(t *testing.T) {
	ids := testIDs(3, 2)
	cfg := Config{Budget: 8, RoundRows: 25, ProbeBatch: 5}
	boot := corrRows(ids, 120, 43, 0.3)
	stream := append(corrRows(ids, 150, 47, 0.05), indepRows(ids, 150, 53)...)

	ref, err := New(ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Bootstrap(boot)

	sub, err := New(ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub.Bootstrap(boot)

	// Split mid-round (cut not on a RoundRows boundary) to exercise the
	// serialized probe set and partial round counter.
	cut := 110
	var refCh, subCh []Changes
	for i, row := range stream {
		if ch := ref.Observe(row); !ch.Empty() {
			refCh = append(refCh, ch)
		}
		if i < cut {
			if ch := sub.Observe(row); !ch.Empty() {
				subCh = append(subCh, ch)
			}
		}
	}
	blob, err := sub.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	for _, row := range stream[cut:] {
		if ch := restored.Observe(row); !ch.Empty() {
			subCh = append(subCh, ch)
		}
	}
	if !reflect.DeepEqual(ref.Admitted(), restored.Admitted()) {
		t.Fatal("restored discoverer's admitted set diverged from uninterrupted run")
	}
	if !reflect.DeepEqual(refCh, subCh) {
		t.Fatal("restored discoverer's change stream diverged from uninterrupted run")
	}
}

func TestUnmarshalStateRejectsMismatchedFleet(t *testing.T) {
	ids := testIDs(2, 2)
	d, _ := New(ids, Config{})
	d.Bootstrap(corrRows(ids, 80, 59, 0.1))
	blob, err := d.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	other, _ := New(testIDs(2, 3), Config{})
	if err := other.UnmarshalState(blob); err == nil {
		t.Fatal("want fleet mismatch error")
	}
	// A differently-configured receiver adopts the serialized config —
	// the checkpoint is authoritative, same as shard topology on recovery.
	shaped, _ := New(ids, Config{Lags: 7, TrainWindow: 99})
	if err := shaped.UnmarshalState(blob); err != nil {
		t.Fatalf("config drift must be adopted, got %v", err)
	}
	if got, want := shaped.Config().TrainWindow, d.Config().TrainWindow; got != want {
		t.Fatalf("adopted TrainWindow = %d, want %d", got, want)
	}
}

func TestTrainingPointsAlignment(t *testing.T) {
	ids := testIDs(2, 1)
	d, err := New(ids, Config{TrainWindow: 50, MinTrain: 10})
	if err != nil {
		t.Fatal(err)
	}
	rows := corrRows(ids, 80, 61, 0.0)
	d.Bootstrap(rows)
	p := manager.MakePair(ids[0], ids[1])
	pts := d.TrainingPoints(p)
	if len(pts) != 50 {
		t.Fatalf("got %d training points, want TrainWindow=50", len(pts))
	}
	// With zero noise the synthetic generator makes Y an affine function
	// of X; check alignment via exact linearity of each point.
	for _, pt := range pts {
		if !finite(pt.X) || !finite(pt.Y) {
			t.Fatalf("non-finite training point %+v", pt)
		}
	}
	if d.TrainingPoints(manager.MakePair(ids[0], timeseries.MeasurementID{Machine: "zz", Metric: "q"})) != nil {
		t.Fatal("out-of-fleet pair must return nil")
	}
}

func TestSyncAdmittedRebuildsGraph(t *testing.T) {
	ids := testIDs(3, 2)
	d, err := New(ids, Config{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []manager.Pair{
		manager.MakePair(ids[0], ids[1]),
		manager.MakePair(ids[2], ids[4]),
	}
	d.SyncAdmitted(append(want, want[0])) // duplicate ignored
	got := d.Admitted()
	manager.SortPairs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Admitted = %v, want %v", got, want)
	}
}

func TestSpearmanMonotoneInvariance(t *testing.T) {
	ids := testIDs(2, 1)
	rnd := lcg(67)
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	// y = exp(x): nonlinear but monotone — rank correlation should be
	// essentially 1 while remaining finite and sane.
	var rows []manager.Row
	for t2 := 0; t2 < 200; t2++ {
		x := rnd() * 4
		rows = append(rows, manager.Row{
			Time: start.Add(time.Duration(t2) * time.Minute),
			Values: map[timeseries.MeasurementID]float64{
				ids[0]: x,
				ids[1]: math.Exp(x),
			},
		})
	}
	d, err := New(ids, Config{Method: Spearman, RoundRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	d.Bootstrap(rows[:100])
	for _, row := range rows[100:] {
		d.Observe(row)
	}
	scores := d.AdmissionScores()
	p := manager.MakePair(ids[0], ids[1])
	r, ok := scores[p]
	if !ok {
		t.Fatalf("monotone pair not admitted; scores=%v", scores)
	}
	if r < 0.95 {
		t.Fatalf("Spearman r = %g, want ≈ 1 for monotone pair", r)
	}
}
