package discover

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"mcorr/internal/manager"
	"mcorr/internal/mathx"
	"mcorr/internal/timeseries"
)

// Method selects the correlation statistic the sketches estimate.
type Method int

const (
	// Pearson feeds raw sample values through the sketches.
	Pearson Method = iota
	// Spearman feeds windowed fractional ranks (over the last RankWindow
	// samples of each series) through the same sketch machinery — a
	// streaming approximation of rank correlation that is robust to
	// monotone nonlinearity and outliers.
	Spearman
)

// String names the method for logs and serialized state.
func (m Method) String() string {
	if m == Spearman {
		return "spearman"
	}
	return "pearson"
}

// Config tunes the discovery policy. The zero value takes the documented
// defaults.
type Config struct {
	// Budget is the global cap on admitted pairs. 0 means unlimited
	// (every candidate may be admitted — the paper's full graph).
	Budget int
	// TopK is the per-anchor admission preference: a candidate is
	// admitted only while at least one of its two series has fewer than
	// TopK admitted partners. Default 8.
	TopK int
	// Decay is the sketches' per-sample forgetting factor γ. Default
	// 0.97 (effective window ≈ 33 samples).
	Decay float64
	// Lags is the sketch lag-window half-width L. Default 4.
	Lags int
	// Method selects Pearson (default) or Spearman feeds.
	Method Method
	// RankWindow is the Spearman rank window. Default 32.
	RankWindow int
	// ProbeBatch is how many non-admitted candidates carry a live probe
	// sketch per round. Default 64.
	ProbeBatch int
	// RoundRows is the round length in rows; admission and eviction
	// decisions happen only at round boundaries. Default 120.
	RoundRows int
	// AdmitAbove is the |r| floor a probed candidate must reach to be
	// admitted. Default 0.30.
	AdmitAbove float64
	// EvictBelow is the |r| ceiling under which an admitted pair counts
	// as flat-lined. Default 0.15.
	EvictBelow float64
	// EvictAfter is how many consecutive flat-lined rounds trigger
	// eviction. Default 2.
	EvictAfter int
	// MinEffSamples is the decayed effective-sample floor below which a
	// sketch's estimate is not trusted for admission or eviction.
	// Default 12 (well under the γ=0.97 plateau of ≈33).
	MinEffSamples float64
	// TrainWindow is how many recent raw rows the discoverer retains per
	// series, used to train a transition model when a pair is admitted.
	// Default 288 (one simulated day at 5-minute steps).
	TrainWindow int
	// MinTrain is the minimum jointly-valid points TrainingPoints needs
	// before an admission is worth training. Default 24.
	MinTrain int
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 8
	}
	if !(c.Decay > 0 && c.Decay <= 1) {
		c.Decay = 0.97
	}
	if c.Lags < 0 {
		c.Lags = 0
	} else if c.Lags == 0 {
		c.Lags = 4
	}
	if c.RankWindow <= 1 {
		c.RankWindow = 32
	}
	if c.ProbeBatch <= 0 {
		c.ProbeBatch = 64
	}
	if c.RoundRows <= 0 {
		c.RoundRows = 120
	}
	if c.AdmitAbove <= 0 {
		c.AdmitAbove = 0.30
	}
	if c.EvictBelow <= 0 {
		c.EvictBelow = 0.15
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 2
	}
	if c.MinEffSamples <= 0 {
		c.MinEffSamples = 12
	}
	if c.TrainWindow <= 0 {
		c.TrainWindow = 288
	}
	if c.MinTrain <= 0 {
		c.MinTrain = 24
	}
	if c.Budget < 0 {
		c.Budget = 0
	}
	return c
}

// Changes reports what one round boundary decided. Admit and Evict are in
// canonical pair order; both empty (and Round 0) when the row did not end
// a round or the round changed nothing.
type Changes struct {
	// Round is the 1-based round that just ended, 0 when no round ended.
	Round uint64
	// Admit lists pairs newly admitted to the graph.
	Admit []manager.Pair
	// Evict lists pairs whose models should be dropped.
	Evict []manager.Pair
}

// Empty reports whether the changes carry no admissions or evictions.
func (c Changes) Empty() bool { return len(c.Admit) == 0 && len(c.Evict) == 0 }

// entry is one admitted candidate with its live sketch.
type entry struct {
	c         int
	sk        *Sketch
	lowRounds int
	score     float64 // last round's best-lag r (bootstrap r before that)
	lag       int
}

// probeEntry is one non-admitted candidate under temporary observation.
type probeEntry struct {
	c  int
	sk *Sketch
}

// Discoverer runs the admission/eviction policy over every pair candidate
// of a fixed fleet. It is not safe for concurrent use; callers serialize
// Observe with the manager step (the monitor loop already does).
type Discoverer struct {
	cfg Config

	ids      []timeseries.MeasurementID // sorted ascending
	idIdx    map[timeseries.MeasurementID]int
	rowStart []int // rowStart[i] = first candidate index with A==ids[i]
	numCand  int

	admitted []*entry // sorted by c
	deg      []int    // admitted partner count per series index

	probe       []probeEntry
	probeCursor int // next candidate index to probe, wraps

	rowsInRound int
	round       uint64

	// hist holds the last TrainWindow raw values per series (NaN for
	// gaps), shared head/len — the training corpus for new admissions
	// and the rank source for Spearman.
	hist     [][]float64
	histHead int
	histLen  int

	rowVals  []float64 // scratch: raw values for the current row
	feedVals []float64 // scratch: sketch feed (raw or ranked)
}

// New builds a Discoverer over the given fleet of measurement IDs. The ID
// list is sorted internally; candidate order (and therefore every
// admission tie-break) is the canonical pair order over the sorted IDs.
func New(ids []timeseries.MeasurementID, cfg Config) (*Discoverer, error) {
	cfg = cfg.withDefaults()
	if len(ids) < 2 {
		return nil, fmt.Errorf("discover: need at least 2 measurements, got %d", len(ids))
	}
	sorted := make([]timeseries.MeasurementID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	idIdx := make(map[timeseries.MeasurementID]int, len(sorted))
	for i, id := range sorted {
		if _, dup := idIdx[id]; dup {
			return nil, fmt.Errorf("discover: duplicate measurement %s", id)
		}
		idIdx[id] = i
	}
	l := len(sorted)
	rowStart := make([]int, l)
	for i := 1; i < l; i++ {
		rowStart[i] = rowStart[i-1] + (l - i)
	}
	d := &Discoverer{
		cfg:      cfg,
		ids:      sorted,
		idIdx:    idIdx,
		rowStart: rowStart,
		numCand:  l * (l - 1) / 2,
		deg:      make([]int, l),
		hist:     make([][]float64, l),
		rowVals:  make([]float64, l),
		feedVals: make([]float64, l),
	}
	for i := range d.hist {
		d.hist[i] = make([]float64, cfg.TrainWindow)
	}
	return d, nil
}

// Config returns the discoverer's effective (defaulted) configuration.
func (d *Discoverer) Config() Config { return d.cfg }

// IDs returns the sorted fleet the discoverer was built over.
func (d *Discoverer) IDs() []timeseries.MeasurementID {
	out := make([]timeseries.MeasurementID, len(d.ids))
	copy(out, d.ids)
	return out
}

// NumCandidates returns l(l−1)/2 — the full pair-candidate count.
func (d *Discoverer) NumCandidates() int { return d.numCand }

// pairAt maps a candidate index back to its (i, j) series indexes, i < j.
func (d *Discoverer) pairAt(c int) (int, int) {
	i := sort.Search(len(d.rowStart), func(k int) bool { return d.rowStart[k] > c }) - 1
	return i, i + 1 + (c - d.rowStart[i])
}

// candOf maps series indexes (either order) to the candidate index.
func (d *Discoverer) candOf(i, j int) int {
	if j < i {
		i, j = j, i
	}
	return d.rowStart[i] + (j - i - 1)
}

// pairOf renders a candidate index as a manager.Pair.
func (d *Discoverer) pairOf(c int) manager.Pair {
	i, j := d.pairAt(c)
	return manager.MakePair(d.ids[i], d.ids[j])
}

// candidateOf maps a pair to its candidate index, or −1 for IDs outside
// the fleet.
func (d *Discoverer) candidateOf(p manager.Pair) int {
	i, oki := d.idIdx[p.A]
	j, okj := d.idIdx[p.B]
	if !oki || !okj || i == j {
		return -1
	}
	return d.candOf(i, j)
}

// isAdmitted reports whether candidate c currently carries a model, via
// binary search over the sorted admitted slice.
func (d *Discoverer) isAdmitted(c int) bool {
	k := sort.Search(len(d.admitted), func(i int) bool { return d.admitted[i].c >= c })
	return k < len(d.admitted) && d.admitted[k].c == c
}

// admitEntry inserts e keeping the admitted slice sorted by candidate.
func (d *Discoverer) admitEntry(e *entry) {
	k := sort.Search(len(d.admitted), func(i int) bool { return d.admitted[i].c >= e.c })
	d.admitted = append(d.admitted, nil)
	copy(d.admitted[k+1:], d.admitted[k:])
	d.admitted[k] = e
	i, j := d.pairAt(e.c)
	d.deg[i]++
	d.deg[j]++
}

// Bootstrap scans the training rows once over every candidate (lag 0, no
// decay — this is the one place discovery is allowed O(l²), and it runs
// offline before streaming starts), then admits the strongest candidates
// under the budget and top-K rules and seeds the admitted sketches plus
// the history rings from the tail of the rows. Returns the admitted pairs
// in canonical order.
func (d *Discoverer) Bootstrap(rows []manager.Row) []manager.Pair {
	l := len(d.ids)
	n := make([]uint32, d.numCand)
	sxy := make([]float64, d.numCand)
	sn := make([]float64, l)
	sx := make([]float64, l)
	sxx := make([]float64, l)
	val := make([]float64, l)
	ok := make([]bool, l)
	for _, row := range rows {
		for i, id := range d.ids {
			v, has := row.Values[id]
			ok[i] = has && finite(v)
			if ok[i] {
				val[i] = v
				sn[i]++
				sx[i] += v
				sxx[i] += v * v
			}
		}
		for i := 0; i < l-1; i++ {
			if !ok[i] {
				continue
			}
			base := d.rowStart[i] - i - 1
			for j := i + 1; j < l; j++ {
				if ok[j] {
					c := base + j
					sxy[c] += val[i] * val[j]
					n[c]++
				}
			}
		}
	}
	mean := make([]float64, l)
	sd := make([]float64, l)
	for i := 0; i < l; i++ {
		if sn[i] > 1 {
			mean[i] = sx[i] / sn[i]
			v := sxx[i]/sn[i] - mean[i]*mean[i]
			if v > 0 {
				sd[i] = math.Sqrt(v)
			}
		}
	}
	type scored struct {
		c int
		r float64
	}
	cands := make([]scored, 0, d.numCand)
	for c := 0; c < d.numCand; c++ {
		if n[c] < 2 {
			continue
		}
		i, j := d.pairAt(c)
		if sd[i] == 0 || sd[j] == 0 {
			continue
		}
		r := clamp1((sxy[c]/float64(n[c]) - mean[i]*mean[j]) / (sd[i] * sd[j]))
		cands = append(cands, scored{c, r})
	}
	sort.Slice(cands, func(a, b int) bool {
		ra, rb := math.Abs(cands[a].r), math.Abs(cands[b].r)
		if ra != rb {
			return ra > rb
		}
		return cands[a].c < cands[b].c
	})
	var admittedPairs []manager.Pair
	for _, s := range cands {
		if d.cfg.Budget > 0 && len(d.admitted) >= d.cfg.Budget {
			break
		}
		i, j := d.pairAt(s.c)
		if d.deg[i] >= d.cfg.TopK && d.deg[j] >= d.cfg.TopK {
			continue
		}
		d.admitEntry(&entry{
			c:     s.c,
			sk:    NewSketch(d.cfg.Lags, d.cfg.Decay),
			score: s.r,
		})
		admittedPairs = append(admittedPairs, d.pairOf(s.c))
	}
	// Seed history and admitted sketches by replaying the training tail
	// through the streaming path (probes excluded, no round boundaries).
	tail := rows
	if len(tail) > d.cfg.TrainWindow {
		tail = tail[len(tail)-d.cfg.TrainWindow:]
	}
	for _, row := range tail {
		d.ingest(row)
		d.updateSketches(d.admitted, nil)
	}
	manager.SortPairs(admittedPairs)
	recordBootstrap(d)
	return admittedPairs
}

// ingest loads one row into the scratch buffers, pushes it into the
// history rings, and computes the sketch feed values (raw for Pearson,
// windowed fractional ranks for Spearman). Missing or non-finite values
// become NaN, which the sketches treat as gaps.
func (d *Discoverer) ingest(row manager.Row) {
	d.histHead = (d.histHead + 1) % d.cfg.TrainWindow
	if d.histLen < d.cfg.TrainWindow {
		d.histLen++
	}
	for i, id := range d.ids {
		v, has := row.Values[id]
		if !has || !finite(v) {
			v = math.NaN()
		}
		d.rowVals[i] = v
		d.hist[i][d.histHead] = v
		if d.cfg.Method == Spearman {
			d.feedVals[i] = d.rankOf(i, v)
		} else {
			d.feedVals[i] = v
		}
	}
}

// rankOf computes the fractional rank of v among the last RankWindow
// history values of series i (the just-pushed v included): (#less +
// (#equal−1)/2) / (window−1), in [0, 1]. NaN in, NaN out.
func (d *Discoverer) rankOf(i int, v float64) float64 {
	if math.IsNaN(v) {
		return math.NaN()
	}
	win := d.cfg.RankWindow
	if win > d.histLen {
		win = d.histLen
	}
	h := d.hist[i]
	less, equal, valid := 0, 0, 0
	for k := 0; k < win; k++ {
		u := h[(d.histHead-k+d.cfg.TrainWindow)%d.cfg.TrainWindow]
		if math.IsNaN(u) {
			continue
		}
		valid++
		if u < v {
			less++
		} else if u == v {
			equal++
		}
	}
	if valid < 2 {
		return math.NaN()
	}
	return (float64(less) + float64(equal-1)/2) / float64(valid-1)
}

// updateSketches feeds the current row into every admitted and probe
// sketch, in ascending candidate order within each set.
func (d *Discoverer) updateSketches(admitted []*entry, probe []probeEntry) {
	for _, e := range admitted {
		i, j := d.pairAt(e.c)
		e.sk.Update(d.feedVals[i], d.feedVals[j])
	}
	for _, p := range probe {
		i, j := d.pairAt(p.c)
		p.sk.Update(d.feedVals[i], d.feedVals[j])
	}
}

// selectProbes picks the next ProbeBatch non-admitted candidates starting
// at probeCursor (wrapping), with fresh sketches. When every candidate is
// admitted the probe set is empty.
func (d *Discoverer) selectProbes() {
	free := d.numCand - len(d.admitted)
	if free <= 0 {
		d.probe = nil
		return
	}
	want := d.cfg.ProbeBatch
	if want > free {
		want = free
	}
	d.probe = make([]probeEntry, 0, want)
	c := d.probeCursor % d.numCand
	for scanned := 0; scanned < d.numCand && len(d.probe) < want; scanned++ {
		if !d.isAdmitted(c) {
			d.probe = append(d.probe, probeEntry{c: c, sk: NewSketch(d.cfg.Lags, d.cfg.Decay)})
		}
		c = (c + 1) % d.numCand
	}
	d.probeCursor = c
}

// Observe feeds one scored row into discovery. At round boundaries it
// returns the admissions and evictions the round decided; otherwise the
// zero Changes. The caller applies the changes to the pair graph.
func (d *Discoverer) Observe(row manager.Row) Changes {
	if d.probe == nil && d.rowsInRound == 0 {
		d.selectProbes()
	}
	d.ingest(row)
	t := sketchTimer()
	d.updateSketches(d.admitted, d.probe)
	t.observe()
	d.rowsInRound++
	if d.rowsInRound < d.cfg.RoundRows {
		return Changes{}
	}
	return d.endRound()
}

// endRound runs the eviction and admission policy and resets round state.
func (d *Discoverer) endRound() Changes {
	d.round++
	ch := Changes{Round: d.round}

	// Eviction: a sustained flat-line (|r| below the floor with enough
	// effective samples, EvictAfter rounds running) drops the pair.
	keep := d.admitted[:0]
	for _, e := range d.admitted {
		r, lag := e.sk.Corr()
		e.score, e.lag = r, lag
		if e.sk.EffSamples() >= d.cfg.MinEffSamples && math.Abs(r) < d.cfg.EvictBelow {
			e.lowRounds++
		} else {
			e.lowRounds = 0
		}
		if e.lowRounds >= d.cfg.EvictAfter {
			i, j := d.pairAt(e.c)
			d.deg[i]--
			d.deg[j]--
			ch.Evict = append(ch.Evict, d.pairOf(e.c))
			continue
		}
		keep = append(keep, e)
	}
	for i := len(keep); i < len(d.admitted); i++ {
		d.admitted[i] = nil
	}
	d.admitted = keep

	// Admission: the strongest probed candidates, |r| over the floor,
	// under the per-anchor top-K preference and the global budget. The
	// probe sketch rides along so the admitted pair keeps its history.
	strong := make([]*probeEntry, 0, len(d.probe))
	for k := range d.probe {
		p := &d.probe[k]
		if p.sk.EffSamples() < d.cfg.MinEffSamples {
			continue
		}
		if r, _ := p.sk.Corr(); math.Abs(r) >= d.cfg.AdmitAbove {
			strong = append(strong, p)
		}
	}
	sort.Slice(strong, func(a, b int) bool {
		ra, _ := strong[a].sk.Corr()
		rb, _ := strong[b].sk.Corr()
		aa, ab := math.Abs(ra), math.Abs(rb)
		if aa != ab {
			return aa > ab
		}
		return strong[a].c < strong[b].c
	})
	for _, p := range strong {
		if d.cfg.Budget > 0 && len(d.admitted) >= d.cfg.Budget {
			break
		}
		i, j := d.pairAt(p.c)
		if d.deg[i] >= d.cfg.TopK && d.deg[j] >= d.cfg.TopK {
			continue
		}
		r, lag := p.sk.Corr()
		d.admitEntry(&entry{c: p.c, sk: p.sk, score: r, lag: lag})
		ch.Admit = append(ch.Admit, d.pairOf(p.c))
	}

	d.probe = nil
	d.rowsInRound = 0
	manager.SortPairs(ch.Admit)
	manager.SortPairs(ch.Evict)
	recordRound(d, ch)
	return ch
}

// TrainingPoints assembles the lag-0 aligned training corpus for a pair
// from the history rings: one Point2 per retained row where both series
// are finite, oldest first. Nil when the pair is outside the fleet or
// fewer than MinTrain joint points exist.
func (d *Discoverer) TrainingPoints(p manager.Pair) []mathx.Point2 {
	c := d.candidateOf(p)
	if c < 0 || d.histLen == 0 {
		return nil
	}
	i, j := d.pairAt(c)
	pts := make([]mathx.Point2, 0, d.histLen)
	for k := d.histLen - 1; k >= 0; k-- {
		idx := (d.histHead - k + d.cfg.TrainWindow) % d.cfg.TrainWindow
		x, y := d.hist[i][idx], d.hist[j][idx]
		if finite(x) && finite(y) {
			pts = append(pts, mathx.Point2{X: x, Y: y})
		}
	}
	if len(pts) < d.cfg.MinTrain {
		return nil
	}
	return pts
}

// Admitted returns the admitted pairs in canonical order.
func (d *Discoverer) Admitted() []manager.Pair {
	out := make([]manager.Pair, len(d.admitted))
	for k, e := range d.admitted {
		out[k] = d.pairOf(e.c)
	}
	return out
}

// AdmissionScores returns each admitted pair's last best-lag correlation
// estimate (the admission score shown by /api/v1/topology).
func (d *Discoverer) AdmissionScores() map[manager.Pair]float64 {
	out := make(map[manager.Pair]float64, len(d.admitted))
	for _, e := range d.admitted {
		out[d.pairOf(e.c)] = e.score
	}
	return out
}

// BestLags returns each admitted pair's best-lag offset (rows; positive
// means the pair's B series leads A).
func (d *Discoverer) BestLags() map[manager.Pair]int {
	out := make(map[manager.Pair]int, len(d.admitted))
	for _, e := range d.admitted {
		out[d.pairOf(e.c)] = e.lag
	}
	return out
}

// BudgetInfo returns the current occupancy: admitted pairs, the budget
// (0 = unlimited), and the full candidate count.
func (d *Discoverer) BudgetInfo() (admitted, budget, candidates int) {
	return len(d.admitted), d.cfg.Budget, d.numCand
}

// SyncAdmitted forces the admitted set to exactly the given pairs with
// fresh sketches — the recovery fallback when no serialized discovery
// state survived but the recovered managers still hold a pair graph.
// Pairs outside the fleet are ignored.
func (d *Discoverer) SyncAdmitted(pairs []manager.Pair) {
	d.admitted = d.admitted[:0]
	for i := range d.deg {
		d.deg[i] = 0
	}
	cs := make([]int, 0, len(pairs))
	for _, p := range pairs {
		if c := d.candidateOf(p); c >= 0 {
			cs = append(cs, c)
		}
	}
	sort.Ints(cs)
	prev := -1
	for _, c := range cs {
		if c == prev {
			continue
		}
		prev = c
		d.admitEntry(&entry{c: c, sk: NewSketch(d.cfg.Lags, d.cfg.Decay)})
	}
	d.probe = nil
	d.rowsInRound = 0
	recordBootstrap(d)
}

// discovererState is the gob wire form of a Discoverer's mutable state.
// The configuration travels too so recovery can detect drift.
type discovererState struct {
	IDs      []string
	Cfg      Config
	Admitted []entryState
	Probe    []probeState
	Cursor   int
	RowsIn   int
	Round    uint64
	HistHead int
	HistLen  int
	Hist     [][]float64
}

type entryState struct {
	C         int
	Sk        *Sketch
	LowRounds int
	Score     float64
	Lag       int
}

type probeState struct {
	C  int
	Sk *Sketch
}

// MarshalState serializes the discoverer's mutable state for a durable
// checkpoint.
func (d *Discoverer) MarshalState() ([]byte, error) {
	st := discovererState{
		IDs:      make([]string, len(d.ids)),
		Cfg:      d.cfg,
		Admitted: make([]entryState, len(d.admitted)),
		Probe:    make([]probeState, len(d.probe)),
		Cursor:   d.probeCursor,
		RowsIn:   d.rowsInRound,
		Round:    d.round,
		HistHead: d.histHead,
		HistLen:  d.histLen,
		Hist:     d.hist,
	}
	for i, id := range d.ids {
		st.IDs[i] = id.String()
	}
	for i, e := range d.admitted {
		st.Admitted[i] = entryState{C: e.c, Sk: e.sk, LowRounds: e.lowRounds, Score: e.score, Lag: e.lag}
	}
	for i, p := range d.probe {
		st.Probe[i] = probeState{C: p.c, Sk: p.sk}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("discover: marshal state: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores state serialized by MarshalState into a
// discoverer built over the same fleet. The serialized configuration is
// authoritative — it replaces the receiver's, exactly like a durable
// checkpoint's shard topology wins over flags at recovery — so the
// restored round, sketches, probes, history, and policy continue the
// pre-crash run precisely.
func (d *Discoverer) UnmarshalState(b []byte) error {
	var st discovererState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return fmt.Errorf("discover: unmarshal state: %w", err)
	}
	if len(st.IDs) != len(d.ids) {
		return fmt.Errorf("discover: state has %d measurements, discoverer has %d", len(st.IDs), len(d.ids))
	}
	for i, id := range d.ids {
		if st.IDs[i] != id.String() {
			return fmt.Errorf("discover: state measurement %d is %s, want %s", i, st.IDs[i], id)
		}
	}
	st.Cfg = st.Cfg.withDefaults()
	if len(st.Hist) != len(d.ids) {
		return fmt.Errorf("discover: state history has %d series, want %d", len(st.Hist), len(d.ids))
	}
	for i, h := range st.Hist {
		if len(h) != st.Cfg.TrainWindow {
			return fmt.Errorf("discover: state history ring %d has %d slots, want %d", i, len(h), st.Cfg.TrainWindow)
		}
	}
	d.cfg = st.Cfg
	d.admitted = d.admitted[:0]
	for i := range d.deg {
		d.deg[i] = 0
	}
	for _, e := range st.Admitted {
		if e.C < 0 || e.C >= d.numCand || e.Sk == nil {
			return fmt.Errorf("discover: corrupt admitted entry")
		}
		d.admitEntry(&entry{c: e.C, sk: e.Sk, lowRounds: e.LowRounds, score: e.Score, lag: e.Lag})
	}
	d.probe = make([]probeEntry, len(st.Probe))
	for i, p := range st.Probe {
		if p.C < 0 || p.C >= d.numCand || p.Sk == nil {
			return fmt.Errorf("discover: corrupt probe entry")
		}
		d.probe[i] = probeEntry{c: p.C, sk: p.Sk}
	}
	if len(d.probe) == 0 {
		d.probe = nil
	}
	d.probeCursor = st.Cursor
	d.rowsInRound = st.RowsIn
	d.round = st.Round
	d.histHead = st.HistHead
	d.histLen = st.HistLen
	d.hist = st.Hist
	recordBootstrap(d)
	return nil
}
