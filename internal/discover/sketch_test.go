package discover

import (
	"math"
	"testing"
)

// directPearson is the reference O(n) lag-0 computation.
func directPearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	return (n*sxy - sx*sy) / math.Sqrt((n*sxx-sx*sx)*(n*syy-sy*sy))
}

func lcg(seed uint64) func() float64 {
	s := seed
	return func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
}

func TestSketchMatchesDirectPearsonNoDecay(t *testing.T) {
	rnd := lcg(1)
	sk := NewSketch(0, 1)
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rnd()
		y := 0.8*x + 0.2*rnd()
		xs = append(xs, x)
		ys = append(ys, y)
		sk.Update(x, y)
	}
	want := directPearson(xs, ys)
	got, lag := sk.Corr()
	if lag != 0 {
		t.Fatalf("lag = %d, want 0", lag)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("r = %g, want %g", got, want)
	}
	if got < 0.9 {
		t.Fatalf("r = %g, want strongly positive", got)
	}
}

func TestSketchBestLagDetection(t *testing.T) {
	// y trails x by 2 steps: x's past leads y, so the best lag is −2.
	rnd := lcg(2)
	sk := NewSketch(4, 1)
	var hist []float64
	for i := 0; i < 400; i++ {
		x := rnd()
		hist = append(hist, x)
		y := rnd() * 0.05
		if i >= 2 {
			y += hist[i-2]
		}
		sk.Update(x, y)
	}
	r, lag := sk.Corr()
	if lag != -2 {
		t.Fatalf("best lag = %d (r=%g), want -2", lag, r)
	}
	if math.Abs(r) < 0.9 {
		t.Fatalf("best-lag r = %g, want |r| > 0.9", r)
	}
}

func TestSketchGapsAndDegenerates(t *testing.T) {
	sk := NewSketch(2, 0.97)
	for i := 0; i < 10; i++ {
		sk.Update(1, 1) // zero variance
	}
	if r, lag := sk.Corr(); r != 0 || lag != 0 {
		t.Fatalf("zero-variance Corr = (%g, %d), want (0, 0)", r, lag)
	}
	sk.Update(math.NaN(), 5)
	sk.Update(3, math.Inf(1))
	// Enough post-gap samples that the decayed pre-gap regime is fully
	// forgotten (0.97^300 ≈ 1e-4).
	rnd := lcg(3)
	for i := 0; i < 300; i++ {
		x := rnd()
		sk.Update(x, -x)
	}
	r, _ := sk.Corr()
	if !finite(r) || r > -0.9 {
		t.Fatalf("post-gap r = %g, want near -1", r)
	}
	if w := sk.EffSamples(); !(w > 0) || !finite(w) {
		t.Fatalf("EffSamples = %g", w)
	}
}

func TestSketchEffSamplesConverges(t *testing.T) {
	sk := NewSketch(0, 0.97)
	rnd := lcg(4)
	for i := 0; i < 500; i++ {
		sk.Update(rnd(), rnd())
	}
	want := 1 / (1 - 0.97)
	if got := sk.EffSamples(); math.Abs(got-want) > 0.5 {
		t.Fatalf("EffSamples = %g, want ≈ %g", got, want)
	}
}

func TestSketchGobRoundTrip(t *testing.T) {
	rnd := lcg(5)
	a := NewSketch(3, 0.95)
	for i := 0; i < 80; i++ {
		x := rnd()
		a.Update(x, 0.5*x+0.5*rnd())
	}
	blob, err := a.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var b Sketch
	if err := b.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	r1, l1 := a.Corr()
	r2, l2 := b.Corr()
	if math.Float64bits(r1) != math.Float64bits(r2) || l1 != l2 {
		t.Fatalf("round-trip Corr (%g,%d) != (%g,%d)", r2, l2, r1, l1)
	}
	if b.EffSamples() != a.EffSamples() || b.Samples() != a.Samples() {
		t.Fatal("round-trip samples mismatch")
	}
	// Continued identically, the restored sketch tracks the original bit
	// for bit — the property crash recovery depends on.
	for i := 0; i < 40; i++ {
		x, y := rnd(), rnd()
		a.Update(x, y)
		b.Update(x, y)
	}
	r1, l1 = a.Corr()
	r2, l2 = b.Corr()
	if math.Float64bits(r1) != math.Float64bits(r2) || l1 != l2 {
		t.Fatalf("post-restore Corr diverged: (%g,%d) != (%g,%d)", r2, l2, r1, l1)
	}
}

func TestSketchGobDecodeRejectsCorrupt(t *testing.T) {
	var s Sketch
	if err := s.GobDecode([]byte("garbage")); err == nil {
		t.Fatal("want error decoding garbage")
	}
}

func TestSketchMergeDisjointHalves(t *testing.T) {
	rnd := lcg(7)
	whole := NewSketch(2, 1)
	a := NewSketch(2, 1)
	b := NewSketch(2, 1)
	for i := 0; i < 120; i++ {
		x := rnd()
		y := 0.9*x + 0.1*rnd()
		whole.Update(x, y)
		if i < 60 {
			a.Update(x, y)
		} else {
			b.Update(x, y)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	rw, _ := whole.Corr()
	rm, _ := a.Corr()
	if math.Abs(rw-rm) > 0.02 {
		t.Fatalf("merged r = %g, whole-stream r = %g", rm, rw)
	}
	if a.Samples() != whole.Samples() {
		t.Fatalf("merged samples = %d, want %d", a.Samples(), whole.Samples())
	}
}

func TestSketchMergeShapeMismatch(t *testing.T) {
	a := NewSketch(2, 0.97)
	if err := a.Merge(NewSketch(3, 0.97)); err == nil {
		t.Fatal("want lag-shape mismatch error")
	}
	if err := a.Merge(NewSketch(2, 0.9)); err == nil {
		t.Fatal("want decay mismatch error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}
