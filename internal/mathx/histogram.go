package mathx

import (
	"fmt"
	"math"
)

// Histogram counts samples over equal-width bins spanning [Lo, Hi).
// Samples outside the range are tallied in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram returns a histogram with n equal-width bins over [lo, hi).
// It returns an error if n < 1 or hi <= lo.
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("histogram with %d bins", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("histogram range [%g, %g)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}, nil
}

// Add tallies x into its bin.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case math.IsNaN(x), x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // guard against float rounding at the edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples added, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of one bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinLo returns the inclusive lower edge of bin i.
func (h *Histogram) BinLo(i int) float64 { return h.Lo + float64(i)*h.BinWidth() }

// Fractions returns each bin's share of the in-range samples; all zeros when
// no in-range samples were added.
func (h *Histogram) Fractions() []float64 {
	in := h.total - h.Under - h.Over
	out := make([]float64, len(h.Counts))
	if in == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(in)
	}
	return out
}

// Mode returns the index of the fullest bin (lowest index on ties).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}
