package mathx

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrEMNoConverge is returned when EM fails to make progress, e.g. because a
// component collapsed onto a single point.
var ErrEMNoConverge = errors.New("mathx: EM did not converge")

// Point2 is a point in the two-dimensional measurement space.
type Point2 struct {
	X, Y float64
}

// Gaussian2 is a two-dimensional Gaussian component with full covariance.
type Gaussian2 struct {
	Mean Point2
	Cov  Sym2
}

// LogPDF returns the log density of p under g. It returns -Inf when the
// covariance is singular.
func (g Gaussian2) LogPDF(p Point2) float64 {
	inv, err := g.Cov.Inverse()
	if err != nil {
		return math.Inf(-1)
	}
	det := g.Cov.Det()
	if det <= 0 {
		return math.Inf(-1)
	}
	dx, dy := p.X-g.Mean.X, p.Y-g.Mean.Y
	md := inv.Mahalanobis(dx, dy)
	return -math.Log(2*math.Pi) - 0.5*math.Log(det) - 0.5*md
}

// Mahalanobis returns the squared Mahalanobis distance of p from g's mean,
// or +Inf when the covariance is singular.
func (g Gaussian2) Mahalanobis(p Point2) float64 {
	inv, err := g.Cov.Inverse()
	if err != nil {
		return math.Inf(1)
	}
	return inv.Mahalanobis(p.X-g.Mean.X, p.Y-g.Mean.Y)
}

// GMM2 is a mixture of two-dimensional Gaussians.
type GMM2 struct {
	Weights    []float64
	Components []Gaussian2
	// LogLikelihood is the final training log-likelihood per sample.
	LogLikelihood float64
	// Iterations is how many EM iterations ran.
	Iterations int
}

// GMMConfig controls FitGMM2.
type GMMConfig struct {
	// Components is the number of mixture components (k ≥ 1).
	Components int
	// MaxIter bounds EM iterations; 0 means 100.
	MaxIter int
	// Tol stops EM when the per-sample log-likelihood improves by less;
	// 0 means 1e-6.
	Tol float64
	// Seed seeds the k-means++ style initialization.
	Seed int64
	// MinVariance is a floor added to covariance diagonals to prevent
	// component collapse; 0 means 1e-9 times the data variance.
	MinVariance float64
}

// FitGMM2 fits a k-component 2-D Gaussian mixture to pts by expectation
// maximization with a k-means++ style initialization. It needs at least
// 2·k points.
func FitGMM2(pts []Point2, cfg GMMConfig) (*GMM2, error) {
	k := cfg.Components
	if k < 1 {
		return nil, fmt.Errorf("gmm with %d components", k)
	}
	if len(pts) < 2*k {
		return nil, fmt.Errorf("gmm with %d components needs at least %d points, got %d", k, 2*k, len(pts))
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-6
	}

	// Data scale, for variance flooring.
	var ox, oy Online
	for _, p := range pts {
		ox.Add(p.X)
		oy.Add(p.Y)
	}
	scale := (ox.Variance() + oy.Variance()) / 2
	if math.IsNaN(scale) || scale == 0 {
		scale = 1
	}
	floor := cfg.MinVariance
	if floor == 0 {
		floor = 1e-9 * scale
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	comps := initComponents(pts, k, scale, rng)
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1 / float64(k)
	}

	resp := make([][]float64, len(pts)) // responsibilities
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	logBuf := make([]float64, k)

	prevLL := math.Inf(-1)
	iter := 0
	for ; iter < maxIter; iter++ {
		// E step.
		var ll float64
		for i, p := range pts {
			for j := range comps {
				logBuf[j] = math.Log(weights[j]) + comps[j].LogPDF(p)
			}
			lse := LogSumExp(logBuf)
			if math.IsInf(lse, -1) {
				return nil, fmt.Errorf("all components singular at point %d: %w", i, ErrEMNoConverge)
			}
			ll += lse
			for j := range comps {
				resp[i][j] = math.Exp(logBuf[j] - lse)
			}
		}
		ll /= float64(len(pts))

		// M step.
		for j := range comps {
			var wsum, mx, my float64
			for i, p := range pts {
				r := resp[i][j]
				wsum += r
				mx += r * p.X
				my += r * p.Y
			}
			if wsum < 1e-12 {
				// Re-seed a dead component at a random point.
				q := pts[rng.Intn(len(pts))]
				comps[j] = Gaussian2{Mean: q, Cov: Sym2{XX: scale, YY: scale}}
				weights[j] = 1e-3
				continue
			}
			mx /= wsum
			my /= wsum
			var cxx, cxy, cyy float64
			for i, p := range pts {
				r := resp[i][j]
				dx, dy := p.X-mx, p.Y-my
				cxx += r * dx * dx
				cxy += r * dx * dy
				cyy += r * dy * dy
			}
			comps[j] = Gaussian2{
				Mean: Point2{X: mx, Y: my},
				Cov:  Sym2{XX: cxx/wsum + floor, XY: cxy / wsum, YY: cyy/wsum + floor},
			}
			weights[j] = wsum / float64(len(pts))
		}
		Normalize(weights)

		if ll-prevLL < tol && iter > 0 {
			prevLL = ll
			break
		}
		prevLL = ll
	}

	return &GMM2{Weights: weights, Components: comps, LogLikelihood: prevLL, Iterations: iter + 1}, nil
}

// initComponents seeds k components at spread-out points (k-means++ style:
// each next seed drawn proportionally to squared distance from the nearest
// existing seed).
func initComponents(pts []Point2, k int, scale float64, rng *rand.Rand) []Gaussian2 {
	seeds := make([]Point2, 0, k)
	seeds = append(seeds, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(seeds) < k {
		var total float64
		for i, p := range pts {
			best := math.Inf(1)
			for _, s := range seeds {
				dx, dy := p.X-s.X, p.Y-s.Y
				if d := dx*dx + dy*dy; d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with seeds; reuse any point.
			seeds = append(seeds, pts[rng.Intn(len(pts))])
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := len(pts) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		seeds = append(seeds, pts[pick])
	}
	comps := make([]Gaussian2, k)
	for i, s := range seeds {
		comps[i] = Gaussian2{Mean: s, Cov: Sym2{XX: scale, YY: scale}}
	}
	return comps
}

// LogPDF returns the log density of p under the mixture.
func (m *GMM2) LogPDF(p Point2) float64 {
	logs := make([]float64, len(m.Components))
	for j, c := range m.Components {
		logs[j] = math.Log(m.Weights[j]) + c.LogPDF(p)
	}
	return LogSumExp(logs)
}

// MinMahalanobis returns the smallest squared Mahalanobis distance from p to
// any component mean — the ellipse-gating statistic of the GMM baseline.
func (m *GMM2) MinMahalanobis(p Point2) float64 {
	best := math.Inf(1)
	for _, c := range m.Components {
		if d := c.Mahalanobis(p); d < best {
			best = d
		}
	}
	return best
}
