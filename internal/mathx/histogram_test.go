package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("0 bins: want error")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range: want error")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("inverted range: want error")
	}
}

func TestHistogramAdd(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{0, 1.9, 2, 9.99, 10, -0.1, math.NaN()} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Under != 2 { // -0.1 and NaN
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 1 { // 10 is exclusive
		t.Errorf("Over = %d", h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if h.BinWidth() != 2 {
		t.Errorf("BinWidth = %g", h.BinWidth())
	}
	if h.BinLo(2) != 4 {
		t.Errorf("BinLo(2) = %g", h.BinLo(2))
	}
	if h.Mode() != 0 {
		t.Errorf("Mode = %d", h.Mode())
	}
}

func TestHistogramFractions(t *testing.T) {
	h, _ := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(-5) // out of range, excluded from fractions
	f := h.Fractions()
	if !AlmostEqual(f[0], 2.0/3, 1e-12) || !AlmostEqual(f[1], 1.0/3, 1e-12) {
		t.Errorf("Fractions = %v", f)
	}
	empty, _ := NewHistogram(0, 1, 3)
	for _, x := range empty.Fractions() {
		if x != 0 {
			t.Error("empty histogram fractions should be zero")
		}
	}
}

// Property: every finite sample lands in exactly one tally
// (a bin, Under, or Over), so tallies always sum to Total.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram(-5, 5, 7)
		if err != nil {
			return false
		}
		for _, x := range raw {
			h.Add(x)
		}
		n := h.Under + h.Over
		for _, c := range h.Counts {
			n += c
		}
		return n == h.Total() && h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	// A value just below Hi must land in the last bin even if float
	// arithmetic rounds the bin index up.
	h, _ := NewHistogram(0, 0.3, 3)
	h.Add(math.Nextafter(0.3, 0))
	if h.Counts[2] != 1 || h.Over != 0 {
		t.Errorf("edge sample: Counts=%v Over=%d", h.Counts, h.Over)
	}
}
