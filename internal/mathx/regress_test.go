package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if !AlmostEqual(f.Slope, 2, 1e-12) || !AlmostEqual(f.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
	if !AlmostEqual(f.R2, 1, 1e-12) {
		t.Errorf("R2 = %g, want 1", f.R2)
	}
	if f.ResidualStd != 0 {
		t.Errorf("ResidualStd = %g, want 0", f.ResidualStd)
	}
	if got := f.Predict(10); !AlmostEqual(got, 21, 1e-12) {
		t.Errorf("Predict(10) = %g", got)
	}
	if got := f.Residual(10, 25); !AlmostEqual(got, 4, 1e-12) {
		t.Errorf("Residual = %g", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 100
		y[i] = 3*x[i] - 7 + rng.NormFloat64()*2
	}
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if math.Abs(f.Slope-3) > 0.05 || math.Abs(f.Intercept+7) > 2 {
		t.Errorf("fit = %+v, want slope≈3 intercept≈-7", f)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %g, want > 0.99", f.R2)
	}
	if math.Abs(f.ResidualStd-2) > 0.2 {
		t.Errorf("ResidualStd = %g, want ≈ 2", f.ResidualStd)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("1 sample: want error")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	// Constant x: slope 0, intercept mean(y).
	f, err := FitLinear([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("constant x: %v", err)
	}
	if f.Slope != 0 || !AlmostEqual(f.Intercept, 2, 1e-12) {
		t.Errorf("constant-x fit = %+v", f)
	}
	// Constant y: exact fit through the intercept.
	f, err = FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatalf("constant y: %v", err)
	}
	if !AlmostEqual(f.R2, 1, 1e-12) {
		t.Errorf("constant-y R2 = %g", f.R2)
	}
}

func TestFitOLS(t *testing.T) {
	// y = 2*a + 3*b + 1 over a small design.
	design := mustMatrix(t, [][]float64{
		{1, 0, 1},
		{0, 1, 1},
		{1, 1, 1},
		{2, 1, 1},
		{1, 2, 1},
	})
	y := make([]float64, design.Rows())
	for i := 0; i < design.Rows(); i++ {
		y[i] = 2*design.At(i, 0) + 3*design.At(i, 1) + 1
	}
	beta, err := FitOLS(design, y)
	if err != nil {
		t.Fatalf("FitOLS: %v", err)
	}
	want := []float64{2, 3, 1}
	for i := range want {
		if !AlmostEqual(beta[i], want[i], 1e-9) {
			t.Errorf("beta = %v, want %v", beta, want)
			break
		}
	}
	if _, err := FitOLS(design, y[:2]); err == nil {
		t.Error("row mismatch: want error")
	}
}

func TestFitOLSRankDeficient(t *testing.T) {
	// Two identical columns: singular normal equations.
	design := mustMatrix(t, [][]float64{
		{1, 1}, {2, 2}, {3, 3},
	})
	if _, err := FitOLS(design, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient design: want error")
	}
}

func TestFitARXRecoversSystem(t *testing.T) {
	// Simulate y_t = 0.5 y_{t-1} + 1.2 x_t - 0.3 x_{t-1} + 2.
	rng := rand.New(rand.NewSource(5))
	n := 800
	x := make([]float64, n)
	y := make([]float64, n)
	for t2 := 1; t2 < n; t2++ {
		x[t2] = 10 + 5*math.Sin(float64(t2)/20) + rng.NormFloat64()
		y[t2] = 0.5*y[t2-1] + 1.2*x[t2] - 0.3*x[t2-1] + 2
	}
	coef, err := FitARX(x, y)
	if err != nil {
		t.Fatalf("FitARX: %v", err)
	}
	want := []float64{0.5, 1.2, -0.3, 2}
	for i := range want {
		if math.Abs(coef[i]-want[i]) > 1e-6 {
			t.Errorf("coef = %v, want %v", coef, want)
			break
		}
	}
	got := PredictARX(coef, x[10], x[9], y[9])
	if math.Abs(got-y[10]) > 1e-6 {
		t.Errorf("PredictARX = %g, want %g", got, y[10])
	}
}

func TestFitARXErrors(t *testing.T) {
	if _, err := FitARX([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few samples: want error")
	}
	if _, err := FitARX([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
}
