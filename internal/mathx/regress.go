package mathx

import (
	"fmt"
	"math"
)

// LinearFit is the result of a simple (one-regressor) least-squares fit
// y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit on the training
	// data; 1 means a perfect linear relationship.
	R2 float64
	// ResidualStd is the sample standard deviation of the residuals.
	ResidualStd float64
	N           int
}

// FitLinear fits y ≈ a·x + b by ordinary least squares.
// It returns an error if the slices differ in length or fewer than two
// samples are given. A constant x yields a slope of zero and intercept
// mean(y).
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("linear fit of %d and %d samples: %w", len(x), len(y), ErrDimensionMismatch)
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, fmt.Errorf("linear fit needs at least 2 samples, got %d", n)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	fit := LinearFit{N: n}
	if sxx == 0 {
		fit.Intercept = my
	} else {
		fit.Slope = sxy / sxx
		fit.Intercept = my - fit.Slope*mx
	}
	// Residuals and R².
	var sse, sst float64
	var res Online
	for i := range x {
		r := y[i] - fit.Predict(x[i])
		res.Add(r)
		sse += r * r
		dy := y[i] - my
		sst += dy * dy
	}
	if sst > 0 {
		fit.R2 = 1 - sse/sst
	} else {
		fit.R2 = 1 // constant y fitted exactly by the intercept
	}
	fit.ResidualStd = res.StdDev()
	if math.IsNaN(fit.ResidualStd) {
		fit.ResidualStd = 0
	}
	return fit, nil
}

// Predict returns the fitted value at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// Residual returns y minus the fitted value at x.
func (f LinearFit) Residual(x, y float64) float64 { return y - f.Predict(x) }

// FitOLS fits y ≈ X·beta by ordinary least squares via the normal
// equations, where X has one row per observation. A column of ones must be
// included by the caller if an intercept is wanted. It returns ErrSingular
// for rank-deficient designs.
func FitOLS(x *Matrix, y []float64) ([]float64, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("ols with %d rows and %d targets: %w", x.Rows(), len(y), ErrDimensionMismatch)
	}
	xt := x.Transpose()
	xtx, err := xt.Mul(x)
	if err != nil {
		return nil, fmt.Errorf("ols normal equations: %w", err)
	}
	xty, err := xt.MulVec(y)
	if err != nil {
		return nil, fmt.Errorf("ols normal equations: %w", err)
	}
	beta, err := SolveLinear(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("ols solve: %w", err)
	}
	return beta, nil
}

// FitARX fits the two-input autoregressive model used by the
// linear-invariant baseline (Jiang et al.):
//
//	y_t ≈ a1·y_{t-1} + b0·x_t + b1·x_{t-1} + c
//
// It returns the coefficients [a1, b0, b1, c]. At least five aligned samples
// are required.
func FitARX(x, y []float64) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("arx fit of %d and %d samples: %w", len(x), len(y), ErrDimensionMismatch)
	}
	if len(x) < 5 {
		return nil, fmt.Errorf("arx fit needs at least 5 samples, got %d", len(x))
	}
	n := len(x) - 1
	design, err := NewMatrix(n, 4)
	if err != nil {
		return nil, err
	}
	target := make([]float64, n)
	for t := 1; t < len(x); t++ {
		r := design.Row(t - 1)
		r[0] = y[t-1]
		r[1] = x[t]
		r[2] = x[t-1]
		r[3] = 1
		target[t-1] = y[t]
	}
	return FitOLS(design, target)
}

// PredictARX returns the one-step ARX prediction for time t (t ≥ 1) given
// the coefficient vector from FitARX.
func PredictARX(coef []float64, xt, xtm1, ytm1 float64) float64 {
	return coef[0]*ytm1 + coef[1]*xt + coef[2]*xtm1 + coef[3]
}
