package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMatrix(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %g", m.At(1, 2))
	}
	if _, err := NewMatrix(-1, 2); err == nil {
		t.Error("NewMatrix(-1, 2): want error")
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows: want error")
	}
	m, err := MatrixFromRows(nil)
	if err != nil || m.Rows() != 0 {
		t.Errorf("empty rows: %v, %d", err, m.Rows())
	}
}

func TestMatrixMul(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	b := mustMatrix(t, [][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(mustMatrix(t, [][]float64{{1, 2, 3}})); err == nil {
		t.Error("Mul incompatible: want error")
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("MulVec incompatible: want error")
	}
}

func TestTranspose(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Errorf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestClone(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestIdentityMul(t *testing.T) {
	a := mustMatrix(t, [][]float64{{2, 3}, {5, 7}})
	id, err := Identity(2)
	if err != nil {
		t.Fatalf("Identity: %v", err)
	}
	c, err := a.Mul(id)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != a.At(i, j) {
				t.Error("A·I != A")
			}
		}
	}
}

func TestSolveLinear(t *testing.T) {
	a := mustMatrix(t, [][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !AlmostEqual(x[0], 1, 1e-9) || !AlmostEqual(x[1], 3, 1e-9) {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular system: want error")
	}
}

func TestSolveLinearNeedsPivot(t *testing.T) {
	// Zero in the leading position forces a row swap.
	a := mustMatrix(t, [][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !AlmostEqual(x[0], 3, 1e-12) || !AlmostEqual(x[1], 2, 1e-12) {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestSolveLinearDimErrors(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("non-square: want error")
	}
	sq := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	if _, err := SolveLinear(sq, []float64{1}); err == nil {
		t.Error("rhs length mismatch: want error")
	}
}

// Property: for random well-conditioned systems, A·x reproduces b.
func TestSolveLinearProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed uint8) bool {
		n := 1 + int(seed)%5
		a, _ := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		got, err := a.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !AlmostEqual(got[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSym2(t *testing.T) {
	s := Sym2{XX: 2, XY: 0, YY: 8}
	if s.Det() != 16 {
		t.Errorf("Det = %g", s.Det())
	}
	inv, err := s.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if !AlmostEqual(inv.XX, 0.5, 1e-12) || !AlmostEqual(inv.YY, 0.125, 1e-12) {
		t.Errorf("Inverse = %+v", inv)
	}
	if got := inv.Mahalanobis(2, 0); !AlmostEqual(got, 2, 1e-12) {
		t.Errorf("Mahalanobis = %g, want 2", got)
	}
	if _, err := (Sym2{}).Inverse(); err == nil {
		t.Error("singular Sym2: want error")
	}
}

func TestMatrixString(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}})
	if a.String() != "1 2\n" {
		t.Errorf("String = %q", a.String())
	}
}

func TestSym2MahalanobisCross(t *testing.T) {
	// Correlated covariance: check the cross term contributes.
	s := Sym2{XX: 1, XY: 0.5, YY: 1}
	inv, err := s.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	d := inv.Mahalanobis(1, 1)
	// For equicorrelated unit-variance pairs, distance along the main
	// diagonal is reduced relative to the independent case (2).
	if d >= 2 || math.IsNaN(d) {
		t.Errorf("Mahalanobis along correlation = %g, want < 2", d)
	}
}
