package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 divisor: 32/7.
	if got := Variance(v); !AlmostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %g", got)
	}
	if got := StdDev(v); !AlmostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of 1 sample should be NaN")
	}
}

func TestCovariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	c, err := Covariance(x, y)
	if err != nil {
		t.Fatalf("Covariance: %v", err)
	}
	if !AlmostEqual(c, 2*Variance(x), 1e-12) {
		t.Errorf("Covariance = %g", c)
	}
	if _, err := Covariance(x, y[:2]); err == nil {
		t.Error("mismatched lengths: want error")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !AlmostEqual(r, 1, 1e-12) {
		t.Errorf("perfect linear Pearson = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if !AlmostEqual(r, -1, 1e-12) {
		t.Errorf("anti-correlated Pearson = %g, want -1", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	r, _ = Pearson(x, flat)
	if r != 0 {
		t.Errorf("constant series Pearson = %g, want 0", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// A nonlinear but monotone relationship: Spearman 1, Pearson < 1.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	rs, err := Spearman(x, y)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	if !AlmostEqual(rs, 1, 1e-12) {
		t.Errorf("Spearman = %g, want 1", rs)
	}
	rp, _ := Pearson(x, y)
	if rp >= 1 {
		t.Errorf("Pearson = %g, want < 1 for convex relation", rp)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks = %v, want %v", got, want)
			break
		}
	}
}

// Property: ranks are a permutation-average — they always sum to n(n+1)/2.
func TestRanksSumProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = float64(i)
			}
			v[i] = x
		}
		r := Ranks(v)
		n := float64(len(v))
		return AlmostEqual(Sum(r), n*(n+1)/2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(v, c.q); !AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if !math.IsNaN(Quantile(v, -0.1)) || !math.IsNaN(Quantile(v, 1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("Quantile single = %g", got)
	}
}

func TestQuantilesBatch(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	got := Quantiles(v, 0, 1, 0.5, 2)
	if got[0] != 1 || got[1] != 4 || !AlmostEqual(got[2], 2.5, 1e-12) || !math.IsNaN(got[3]) {
		t.Errorf("Quantiles = %v", got)
	}
	empty := Quantiles(nil, 0.5)
	if !math.IsNaN(empty[0]) {
		t.Error("Quantiles of empty should be NaN")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	v := make([]float64, 1000)
	var o Online
	for i := range v {
		v[i] = rng.NormFloat64()*3 + 5
		o.Add(v[i])
	}
	if o.N() != 1000 {
		t.Errorf("N = %d", o.N())
	}
	if !AlmostEqual(o.Mean(), Mean(v), 1e-9) {
		t.Errorf("online mean %g vs batch %g", o.Mean(), Mean(v))
	}
	if !AlmostEqual(o.Variance(), Variance(v), 1e-9) {
		t.Errorf("online var %g vs batch %g", o.Variance(), Variance(v))
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if !math.IsNaN(o.Mean()) || !math.IsNaN(o.Variance()) {
		t.Error("empty Online should report NaN moments")
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, a, b Online
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !AlmostEqual(a.Mean(), all.Mean(), 1e-9) || !AlmostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merge mean/var %g/%g vs %g/%g", a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
	// Merging into empty adopts the other side.
	var empty Online
	empty.Merge(a)
	if empty.N() != a.N() || !AlmostEqual(empty.Mean(), a.Mean(), 0) {
		t.Error("merge into empty should copy")
	}
	// Merging an empty is a no-op.
	n := a.N()
	a.Merge(Online{})
	if a.N() != n {
		t.Error("merge of empty should be a no-op")
	}
}

func TestEWMA(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Error("alpha 0: want error")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Error("alpha > 1: want error")
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatalf("NewEWMA: %v", err)
	}
	if !math.IsNaN(e.Value()) {
		t.Error("empty EWMA should be NaN")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first value = %g", e.Value())
	}
	e.Add(0)
	if !AlmostEqual(e.Value(), 5, 1e-12) {
		t.Errorf("after decay = %g, want 5", e.Value())
	}
}

// Property: Pearson is always within [-1, 1] for finite data.
func TestPearsonRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		m := 2 + int(n)%100
		x := make([]float64, m)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64() + 0.3*x[i]
		}
		r, err := Pearson(x, y)
		return err == nil && r >= -1 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOnlineStateRestore(t *testing.T) {
	var o Online
	for _, v := range []float64{1, 2, 3, 4} {
		o.Add(v)
	}
	n, mean, m2 := o.State()
	var r Online
	r.Restore(n, mean, m2)
	if r.N() != o.N() || r.Mean() != o.Mean() || r.Variance() != o.Variance() {
		t.Error("Restore should reproduce the accumulator exactly")
	}
	// The restored accumulator keeps accumulating correctly.
	o.Add(10)
	r.Add(10)
	if r.Mean() != o.Mean() || r.Variance() != o.Variance() {
		t.Error("restored accumulator diverged after Add")
	}
}
