package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two operands have incompatible sizes.
var ErrDimensionMismatch = errors.New("mathx: dimension mismatch")

// Dot returns the inner product of a and b.
// It returns an error if the slices differ in length.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dot of %d and %d elements: %w", len(a), len(b), ErrDimensionMismatch)
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v. An empty slice sums to zero.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or NaN for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	return Sum(v) / float64(len(v))
}

// MinMax returns the smallest and largest elements of v.
// It returns NaNs for an empty slice.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Scale multiplies every element of v by k in place and returns v.
func Scale(v []float64, k float64) []float64 {
	for i := range v {
		v[i] *= k
	}
	return v
}

// AddScaled adds k*src to dst element-wise in place.
// It returns an error if the slices differ in length.
func AddScaled(dst, src []float64, k float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("addScaled of %d and %d elements: %w", len(dst), len(src), ErrDimensionMismatch)
	}
	for i := range dst {
		dst[i] += k * src[i]
	}
	return nil
}

// Normalize scales v in place so its elements sum to one and returns the
// original sum. If the sum is zero or not finite, v is set to the uniform
// distribution instead, so the result is always a valid probability vector.
func Normalize(v []float64) float64 {
	s := Sum(v)
	if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return s
	}
	Scale(v, 1/s)
	return s
}

// LogSumExp returns log(sum_i exp(v_i)) computed stably.
// It returns -Inf for an empty slice.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	var s float64
	for _, x := range v {
		s += math.Exp(x - mx)
	}
	return mx + math.Log(s)
}

// SoftmaxInto writes the softmax of logits into dst and returns dst.
// dst and logits may alias. If the lengths differ an error is returned.
func SoftmaxInto(dst, logits []float64) ([]float64, error) {
	if len(dst) != len(logits) {
		return nil, fmt.Errorf("softmax into %d from %d elements: %w", len(dst), len(logits), ErrDimensionMismatch)
	}
	lse := LogSumExp(logits)
	if math.IsInf(lse, -1) {
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return dst, nil
	}
	for i, x := range logits {
		dst[i] = math.Exp(x - lse)
	}
	return dst, nil
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// For n == 1 it returns just lo. For n <= 0 it returns nil.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// AlmostEqual reports whether a and b are within tol of each other,
// treating two NaNs as equal (useful in tests).
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}
