// Package mathx provides the hand-rolled numerical routines the rest of the
// project builds on: vector and dense-matrix operations, linear system
// solving, ordinary least squares, descriptive statistics, online moments,
// histograms and quantiles, and a two-dimensional Gaussian mixture fitted by
// expectation maximization.
//
// The project is restricted to the standard library, so everything here is
// implemented from first principles. The routines favour clarity and
// numerical robustness (partial pivoting, Welford accumulation, log-space
// likelihoods) over raw speed; the sizes involved in correlation modeling
// (2-D points, grids of at most a few hundred cells) are small.
//
// Online (Welford) accumulators expose their internal state for exact
// persistence: State/Restore round-trips reproduce the running mean and
// variance bit for bit, which the checkpointing layers rely on.
package mathx
