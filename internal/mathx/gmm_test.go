package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// sampleBlob draws n points from a Gaussian blob.
func sampleBlob(rng *rand.Rand, n int, mx, my, sx, sy float64) []Point2 {
	pts := make([]Point2, n)
	for i := range pts {
		pts[i] = Point2{X: mx + rng.NormFloat64()*sx, Y: my + rng.NormFloat64()*sy}
	}
	return pts
}

func TestGaussian2LogPDF(t *testing.T) {
	g := Gaussian2{Mean: Point2{0, 0}, Cov: Sym2{XX: 1, YY: 1}}
	// Standard bivariate normal at the origin: log(1/(2π)).
	got := g.LogPDF(Point2{0, 0})
	want := -math.Log(2 * math.Pi)
	if !AlmostEqual(got, want, 1e-12) {
		t.Errorf("LogPDF(0,0) = %g, want %g", got, want)
	}
	// Farther points are less likely.
	if g.LogPDF(Point2{3, 3}) >= got {
		t.Error("LogPDF should decrease away from the mean")
	}
	// Singular covariance: -Inf, not a panic.
	bad := Gaussian2{Cov: Sym2{}}
	if !math.IsInf(bad.LogPDF(Point2{1, 1}), -1) {
		t.Error("singular covariance should give -Inf")
	}
	if !math.IsInf(bad.Mahalanobis(Point2{1, 1}), 1) {
		t.Error("singular covariance Mahalanobis should be +Inf")
	}
}

func TestFitGMM2TwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := append(sampleBlob(rng, 400, 0, 0, 1, 1), sampleBlob(rng, 400, 10, 10, 1, 1)...)
	m, err := FitGMM2(pts, GMMConfig{Components: 2, Seed: 4})
	if err != nil {
		t.Fatalf("FitGMM2: %v", err)
	}
	// The two means should land near (0,0) and (10,10), in some order.
	c0, c1 := m.Components[0].Mean, m.Components[1].Mean
	if c0.X > c1.X {
		c0, c1 = c1, c0
	}
	if math.Abs(c0.X) > 0.5 || math.Abs(c0.Y) > 0.5 {
		t.Errorf("component near origin = %+v", c0)
	}
	if math.Abs(c1.X-10) > 0.5 || math.Abs(c1.Y-10) > 0.5 {
		t.Errorf("component near (10,10) = %+v", c1)
	}
	// Weights split roughly evenly.
	if math.Abs(m.Weights[0]-0.5) > 0.1 {
		t.Errorf("weights = %v", m.Weights)
	}
	// Density at a cluster center far exceeds density between clusters.
	if m.LogPDF(Point2{0, 0}) <= m.LogPDF(Point2{5, 5}) {
		t.Error("LogPDF should peak at cluster centers")
	}
	// Mahalanobis gating: points at a center are inside, midpoints outside.
	if m.MinMahalanobis(Point2{0, 0}) > 1 {
		t.Error("center should have small Mahalanobis distance")
	}
	if m.MinMahalanobis(Point2{5, 5}) < 9 {
		t.Errorf("midpoint Mahalanobis = %g, want ≫ chi2 gate", m.MinMahalanobis(Point2{5, 5}))
	}
}

func TestFitGMM2SingleComponentMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := sampleBlob(rng, 2000, 3, -2, 2, 0.5)
	m, err := FitGMM2(pts, GMMConfig{Components: 1})
	if err != nil {
		t.Fatalf("FitGMM2: %v", err)
	}
	c := m.Components[0]
	if math.Abs(c.Mean.X-3) > 0.2 || math.Abs(c.Mean.Y+2) > 0.1 {
		t.Errorf("mean = %+v", c.Mean)
	}
	if math.Abs(c.Cov.XX-4) > 0.5 || math.Abs(c.Cov.YY-0.25) > 0.06 {
		t.Errorf("cov = %+v", c.Cov)
	}
	if !AlmostEqual(m.Weights[0], 1, 1e-9) {
		t.Errorf("weight = %v", m.Weights)
	}
}

func TestFitGMM2Errors(t *testing.T) {
	if _, err := FitGMM2(nil, GMMConfig{Components: 0}); err == nil {
		t.Error("0 components: want error")
	}
	if _, err := FitGMM2(make([]Point2, 3), GMMConfig{Components: 2}); err == nil {
		t.Error("too few points: want error")
	}
}

func TestFitGMM2Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := append(sampleBlob(rng, 200, 0, 0, 1, 1), sampleBlob(rng, 200, 6, 0, 1, 1)...)
	a, err := FitGMM2(pts, GMMConfig{Components: 2, Seed: 77})
	if err != nil {
		t.Fatalf("FitGMM2: %v", err)
	}
	b, err := FitGMM2(pts, GMMConfig{Components: 2, Seed: 77})
	if err != nil {
		t.Fatalf("FitGMM2: %v", err)
	}
	for i := range a.Components {
		if a.Components[i].Mean != b.Components[i].Mean {
			t.Error("same seed should give identical fits")
		}
	}
}

func TestFitGMM2DegenerateCoincidentPoints(t *testing.T) {
	// All points identical: the variance floor must keep EM finite.
	pts := make([]Point2, 20)
	for i := range pts {
		pts[i] = Point2{X: 1, Y: 1}
	}
	m, err := FitGMM2(pts, GMMConfig{Components: 2, Seed: 1})
	if err != nil {
		t.Fatalf("FitGMM2 on coincident points: %v", err)
	}
	for _, c := range m.Components {
		if math.IsNaN(c.Mean.X) || math.IsNaN(c.Cov.XX) {
			t.Error("NaN in fitted component")
		}
	}
}
