package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Variance returns the unbiased sample variance of v (divisor n-1).
// It returns NaN for fewer than two samples.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return math.NaN()
	}
	var o Online
	for _, x := range v {
		o.Add(x)
	}
	return o.Variance()
}

// StdDev returns the unbiased sample standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Covariance returns the unbiased sample covariance of x and y.
// It returns an error if the slices differ in length and NaN for fewer than
// two samples.
func Covariance(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("covariance of %d and %d samples: %w", len(x), len(y), ErrDimensionMismatch)
	}
	n := len(x)
	if n < 2 {
		return math.NaN(), nil
	}
	mx, my := Mean(x), Mean(y)
	var s float64
	for i := range x {
		s += (x[i] - mx) * (y[i] - my)
	}
	return s / float64(n-1), nil
}

// Pearson returns the Pearson linear correlation coefficient of x and y.
// It returns 0 when either series is constant (no linear relation defined)
// and an error if the slices differ in length.
func Pearson(x, y []float64) (float64, error) {
	cov, err := Covariance(x, y)
	if err != nil {
		return 0, err
	}
	sx, sy := StdDev(x), StdDev(y)
	if sx == 0 || sy == 0 || math.IsNaN(cov) {
		return 0, nil
	}
	r := cov / (sx * sy)
	return Clamp(r, -1, 1), nil
}

// Spearman returns the Spearman rank correlation coefficient of x and y,
// i.e. the Pearson correlation of their ranks with ties sharing the average
// rank. It returns an error if the slices differ in length.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("spearman of %d and %d samples: %w", len(x), len(y), ErrDimensionMismatch)
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the fractional ranks of v (1-based); tied values receive the
// average of the ranks they span.
func Ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of v using linear
// interpolation between order statistics. v need not be sorted; it is not
// modified. It returns NaN for an empty slice or q outside [0, 1].
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Quantiles returns several quantiles of v in one pass over a single sorted
// copy; qs values outside [0, 1] yield NaN.
func Quantiles(v []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(v) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	for i, q := range qs {
		if q < 0 || q > 1 {
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(s, q)
	}
	return out
}

// Online accumulates count, mean and variance incrementally using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples seen.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or NaN before any samples.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the running unbiased sample variance, or NaN for fewer
// than two samples.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// State exposes the accumulator internals (count, mean, sum of squared
// deviations) for serialization.
func (o Online) State() (n int, mean, m2 float64) { return o.n, o.mean, o.m2 }

// Restore sets the accumulator to a previously captured State.
func (o *Online) Restore(n int, mean, m2 float64) {
	o.n, o.mean, o.m2 = n, mean, m2
}

// Merge combines another accumulator into o (parallel Welford merge).
func (o *Online) Merge(b Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = b
		return
	}
	n := o.n + b.n
	d := b.mean - o.mean
	o.m2 += b.m2 + d*d*float64(o.n)*float64(b.n)/float64(n)
	o.mean += d * float64(b.n) / float64(n)
	o.n = n
}

// EWMA is an exponentially weighted moving average. The zero value is not
// usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha weights recent samples more. It returns an error for alpha outside
// that range.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("ewma alpha %g outside (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Add incorporates x and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or NaN before any samples.
func (e *EWMA) Value() float64 {
	if !e.init {
		return math.NaN()
	}
	return e.value
}
