package mathx

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular matrix")

// Matrix is a dense row-major matrix of float64.
// The zero value is an empty matrix; use NewMatrix to allocate.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates a rows×cols matrix of zeros.
// It returns an error if either dimension is negative.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("new %dx%d matrix: %w", rows, cols, ErrDimensionMismatch)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
// The data is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m, err := NewMatrix(len(rows), cols)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has %d columns, want %d: %w", i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) (*Matrix, error) {
	m, err := NewMatrix(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j). Indices are not bounds-checked beyond
// the underlying slice access.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("mul %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out, err := NewMatrix(m.rows, b.cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m.rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("mulvec %dx%d by %d: %w", m.rows, m.cols, len(v), ErrDimensionMismatch)
	}
	out := make([]float64, m.rows)
	for i := range out {
		s, _ := Dot(m.Row(i), v)
		out[i] = s
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := &Matrix{rows: m.cols, cols: m.rows, data: make([]float64, len(m.data))}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.At(i, j)
		}
	}
	return t
}

// SolveLinear solves the square system a·x = b by Gaussian elimination with
// partial pivoting. a and b are not modified. It returns ErrSingular when a
// pivot falls below a small absolute tolerance.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("solve with %dx%d matrix: %w", a.rows, a.cols, ErrDimensionMismatch)
	}
	if len(b) != n {
		return nil, fmt.Errorf("solve %d equations with %d rhs values: %w", n, len(b), ErrDimensionMismatch)
	}
	// Work on an augmented copy.
	aug := make([][]float64, n)
	for i := 0; i < n; i++ {
		aug[i] = make([]float64, n+1)
		copy(aug[i], a.Row(i))
		aug[i][n] = b[i]
	}
	const tol = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < tol {
			return nil, fmt.Errorf("pivot %d: %w", col, ErrSingular)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := aug[r][col] / aug[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := aug[i][n]
		for j := i + 1; j < n; j++ {
			s -= aug[i][j] * x[j]
		}
		x[i] = s / aug[i][i]
	}
	return x, nil
}

// String renders the matrix for debugging, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Sym2 is a symmetric 2×2 matrix, used for covariance of 2-D data.
type Sym2 struct {
	XX, XY, YY float64
}

// Det returns the determinant of s.
func (s Sym2) Det() float64 { return s.XX*s.YY - s.XY*s.XY }

// Inverse returns the inverse of s, or ErrSingular if the determinant is
// too close to zero.
func (s Sym2) Inverse() (Sym2, error) {
	d := s.Det()
	if math.Abs(d) < 1e-18 {
		return Sym2{}, fmt.Errorf("2x2 inverse with det %g: %w", d, ErrSingular)
	}
	return Sym2{XX: s.YY / d, XY: -s.XY / d, YY: s.XX / d}, nil
}

// Mahalanobis returns (dx,dy)·s⁻¹·(dx,dy)ᵀ given the already-inverted
// matrix inv.
func (s Sym2) Mahalanobis(dx, dy float64) float64 {
	return s.XX*dx*dx + 2*s.XY*dx*dy + s.YY*dy*dy
}
