package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	got, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Dot with mismatched lengths: want error")
	}
}

func TestDotEmpty(t *testing.T) {
	got, err := Dot(nil, nil)
	if err != nil || got != 0 {
		t.Errorf("Dot(nil, nil) = %g, %v; want 0, nil", got, err)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %g, want 0", got)
	}
}

func TestSumMean(t *testing.T) {
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("Sum = %g, want 6.5", got)
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %g, want 3", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g, %g; want -1, 7", lo, hi)
	}
	lo, hi = MinMax([]float64{5})
	if lo != 5 || hi != 5 {
		t.Errorf("MinMax single = %g, %g; want 5, 5", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("MinMax(nil) should be NaN, NaN")
	}
}

func TestScaleAddScaled(t *testing.T) {
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Scale = %v, want [3 6]", v)
	}
	if err := AddScaled(v, []float64{1, 1}, 2); err != nil {
		t.Fatalf("AddScaled: %v", err)
	}
	if v[0] != 5 || v[1] != 8 {
		t.Errorf("AddScaled = %v, want [5 8]", v)
	}
	if err := AddScaled(v, []float64{1}, 1); err == nil {
		t.Error("AddScaled mismatched lengths: want error")
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{1, 3}
	Normalize(v)
	if !AlmostEqual(v[0], 0.25, 1e-12) || !AlmostEqual(v[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", v)
	}
	// Degenerate: zero vector becomes uniform.
	z := []float64{0, 0, 0, 0}
	Normalize(z)
	for _, x := range z {
		if !AlmostEqual(x, 0.25, 1e-12) {
			t.Errorf("Normalize zero vector = %v, want uniform", z)
		}
	}
}

// Property: Normalize always yields a probability vector for finite input.
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			v[i] = math.Abs(x)
		}
		Normalize(v)
		var s float64
		for _, x := range v {
			if x < 0 || math.IsNaN(x) {
				return false
			}
			s += x
		}
		return AlmostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(3)})
	if !AlmostEqual(got, math.Log(4), 1e-12) {
		t.Errorf("LogSumExp = %g, want log 4", got)
	}
	// Large magnitudes must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	if !AlmostEqual(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp large = %g", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}), -1) {
		t.Error("LogSumExp(all -Inf) should be -Inf")
	}
}

func TestSoftmaxInto(t *testing.T) {
	dst := make([]float64, 3)
	if _, err := SoftmaxInto(dst, []float64{0, 0, 0}); err != nil {
		t.Fatalf("SoftmaxInto: %v", err)
	}
	for _, x := range dst {
		if !AlmostEqual(x, 1.0/3, 1e-12) {
			t.Errorf("uniform softmax = %v", dst)
		}
	}
	// Aliasing is allowed.
	v := []float64{math.Log(1), math.Log(9)}
	if _, err := SoftmaxInto(v, v); err != nil {
		t.Fatalf("SoftmaxInto alias: %v", err)
	}
	if !AlmostEqual(v[0], 0.1, 1e-12) || !AlmostEqual(v[1], 0.9, 1e-12) {
		t.Errorf("softmax alias = %v", v)
	}
	if _, err := SoftmaxInto(make([]float64, 2), make([]float64, 3)); err == nil {
		t.Error("SoftmaxInto mismatched lengths: want error")
	}
	// All -Inf logits yield uniform.
	u := make([]float64, 4)
	if _, err := SoftmaxInto(u, []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1), math.Inf(-1)}); err != nil {
		t.Fatalf("SoftmaxInto -Inf: %v", err)
	}
	for _, x := range u {
		if !AlmostEqual(x, 0.25, 1e-12) {
			t.Errorf("softmax of -Inf = %v, want uniform", u)
		}
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v", got)
	}
	if Linspace(0, 1, 0) != nil {
		t.Error("Linspace n=0 should be nil")
	}
}
