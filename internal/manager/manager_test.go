package manager

import (
	"math"
	"testing"
	"time"

	"mcorr/internal/alarm"
	"mcorr/internal/core"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// trainedManager builds a small group trace, trains on day 1, and returns
// the manager plus the full dataset and ground truth.
func trainedManager(t *testing.T, cfg Config, days int, faults ...simulator.Fault) (*Manager, *timeseries.Dataset, *simulator.GroundTruth) {
	t.Helper()
	ds, gt, err := simulator.Generate(simulator.GroupConfig{
		Name: "M", Machines: 3, Days: days, Seed: 17, Faults: faults,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	trainEnd := timeseries.MonitoringStart.AddDate(0, 0, 1)
	mgr, err := New(ds.Slice(timeseries.MonitoringStart, trainEnd), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return mgr, ds, gt
}

func TestNewValidation(t *testing.T) {
	if _, err := New(timeseries.NewDataset(), Config{}); err == nil {
		t.Error("empty dataset: want error")
	}
	one := timeseries.NewDataset()
	s, _ := timeseries.NewSeries(timeseries.MeasurementID{Machine: "m", Metric: "x"}, timeseries.MonitoringStart, time.Minute)
	one.Add(s)
	if _, err := New(one, Config{}); err == nil {
		t.Error("single measurement: want error")
	}
}

func TestNewTrainsAllPairs(t *testing.T) {
	mgr, _, _ := trainedManager(t, Config{}, 2)
	l := 3 * len(simulator.AllMetrics)
	want := l * (l - 1) / 2
	if got := len(mgr.Pairs()); got != want {
		t.Errorf("pairs = %d, want l(l-1)/2 = %d", got, want)
	}
	if got := len(mgr.IDs()); got != l {
		t.Errorf("IDs = %d, want %d", got, l)
	}
	// Model accessor works in either argument order.
	ids := mgr.IDs()
	if mgr.Model(ids[0], ids[1]) == nil || mgr.Model(ids[1], ids[0]) == nil {
		t.Error("Model accessor failed")
	}
	if mgr.Model(ids[0], timeseries.MeasurementID{Machine: "nope"}) != nil {
		t.Error("unknown pair should be nil")
	}
}

func TestRunProducesHighFitnessOnNormalData(t *testing.T) {
	mgr, ds, _ := trainedManager(t, Config{}, 2)
	from := timeseries.MonitoringStart.AddDate(0, 0, 1)
	to := timeseries.MonitoringStart.AddDate(0, 0, 2)
	reports, err := mgr.Run(ds, from, to)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(reports) != timeseries.SamplesPerDay {
		t.Fatalf("reports = %d", len(reports))
	}
	if mgr.Steps() < timeseries.SamplesPerDay-2 {
		t.Errorf("Steps = %d", mgr.Steps())
	}
	mean := mgr.SystemMean()
	if mean < 0.8 || mean > 1 {
		t.Errorf("normal-day system fitness = %.3f, paper reports 0.8–0.98", mean)
	}
	// Per-measurement means exist for every measurement.
	means := mgr.MeasurementMeans()
	if len(means) != len(mgr.IDs()) {
		t.Errorf("measurement means = %d", len(means))
	}
	for id, q := range means {
		if math.IsNaN(q) || q < 0.5 {
			t.Errorf("measurement %s mean fitness = %.3f", id, q)
		}
	}
}

func TestStepMissingValuesSkipPairs(t *testing.T) {
	mgr, ds, _ := trainedManager(t, Config{}, 2)
	ids := mgr.IDs()
	from := timeseries.MonitoringStart.AddDate(0, 0, 1)
	// Warm up one row, then drop one measurement from the next row.
	full := Row{Time: from, Values: map[timeseries.MeasurementID]float64{}}
	for _, id := range ids {
		s := ds.Get(id)
		if i, ok := s.IndexOf(from); ok {
			full.Values[id] = s.Values[i]
		}
	}
	mgr.Step(full)
	partial := Row{Time: from.Add(timeseries.SampleStep), Values: map[timeseries.MeasurementID]float64{}}
	for _, id := range ids[1:] {
		s := ds.Get(id)
		if i, ok := s.IndexOf(partial.Time); ok {
			partial.Values[id] = s.Values[i]
		}
	}
	rep := mgr.Step(partial)
	if _, present := rep.Measurements[ids[0]]; present {
		t.Error("measurement without a value should have no score")
	}
	l := len(ids)
	if rep.ScoredPairs != (l-1)*(l-2)/2 {
		t.Errorf("scored pairs = %d, want %d", rep.ScoredPairs, (l-1)*(l-2)/2)
	}
}

func TestKeepPairScores(t *testing.T) {
	mgr, ds, _ := trainedManager(t, Config{KeepPairScores: true}, 2)
	from := timeseries.MonitoringStart.AddDate(0, 0, 1)
	reports, err := mgr.Run(ds, from, from.Add(3*timeseries.SampleStep))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	last := reports[len(reports)-1]
	if len(last.Pairs) == 0 {
		t.Fatal("KeepPairScores should populate Pairs")
	}
	for p, q := range last.Pairs {
		if q < 0 || q > 1 {
			t.Errorf("pair %s fitness %.3f out of range", p, q)
		}
	}
}

func TestFaultDropsScoresAndLocalizes(t *testing.T) {
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	faulty := simulator.MachineName("M", 2)
	fault := simulator.Fault{
		ID: "f1", Machine: faulty, Metric: "",
		Kind:  simulator.FaultCorrelationBreak,
		Start: day1.Add(9 * time.Hour), End: day1.Add(12 * time.Hour),
	}
	sink := &alarm.MemorySink{}
	mgr, ds, _ := trainedManager(t, Config{
		Model:                core.Config{Adaptive: false},
		MeasurementThreshold: 0.6,
		Sink:                 sink,
	}, 2, fault)
	reports, err := mgr.Run(ds, day1, day1.AddDate(0, 0, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// System fitness during the fault window should dip below the
	// normal-window fitness (the paper's Figure 12 downward spike).
	var faultSum, normSum float64
	var faultN, normN int
	for _, r := range reports {
		if math.IsNaN(r.System) {
			continue
		}
		if !r.Time.Before(fault.Start) && r.Time.Before(fault.End) {
			faultSum += r.System
			faultN++
		} else {
			normSum += r.System
			normN++
		}
	}
	faultMean, normMean := faultSum/float64(faultN), normSum/float64(normN)
	if faultMean >= normMean-0.02 {
		t.Errorf("fault-window fitness %.3f should dip below normal %.3f", faultMean, normMean)
	}
	// Localization: the faulty machine ranks worst.
	loc := mgr.Localize()
	if loc.Suspect() != faulty {
		t.Errorf("suspect = %q, want %q (ranking: %+v)", loc.Suspect(), faulty, loc.Machines)
	}
	if len(loc.Machines) != 3 {
		t.Errorf("machines ranked = %d", len(loc.Machines))
	}
	// Alarms were raised for the faulty machine's measurements.
	found := false
	for _, a := range sink.Alarms() {
		if a.Scope == alarm.ScopeMeasurement && a.Measurement.Machine == faulty {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected measurement alarms for the faulty machine")
	}
}

func TestSystemAlarmAndProbDelta(t *testing.T) {
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	fault := simulator.Fault{
		ID: "f2", Machine: simulator.MachineName("M", 1), Metric: "",
		Kind:  simulator.FaultFlapping,
		Start: day1.Add(6 * time.Hour), End: day1.Add(9 * time.Hour),
	}
	sink := &alarm.MemorySink{}
	mgr, ds, _ := trainedManager(t, Config{
		SystemThreshold: 0.9,
		ProbDelta:       1e-4,
		Sink:            sink,
	}, 2, fault)
	if _, err := mgr.Run(ds, day1, day1.AddDate(0, 0, 1)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sys, pair int
	for _, a := range sink.Alarms() {
		switch a.Scope {
		case alarm.ScopeSystem:
			sys++
		case alarm.ScopePair:
			pair++
		}
	}
	if sys == 0 {
		t.Error("flapping a whole machine should depress Q below 0.9 at least once")
	}
	if pair == 0 {
		t.Error("improbable transitions should trip the δ pair alarms")
	}
}

func TestResetAccumulatorsAndChains(t *testing.T) {
	mgr, ds, _ := trainedManager(t, Config{}, 2)
	from := timeseries.MonitoringStart.AddDate(0, 0, 1)
	if _, err := mgr.Run(ds, from, from.Add(10*timeseries.SampleStep)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mgr.Steps() == 0 {
		t.Fatal("no steps recorded")
	}
	mgr.ResetAccumulators()
	if mgr.Steps() != 0 || !math.IsNaN(mgr.SystemMean()) {
		t.Error("ResetAccumulators should clear running means")
	}
	mgr.ResetChains() // must not panic; next row is unscored
	rep := mgr.Step(Row{Time: from.Add(11 * timeseries.SampleStep), Values: rowValues(ds, from.Add(11*timeseries.SampleStep))})
	if rep.ScoredPairs != 0 {
		t.Error("first row after ResetChains should score nothing")
	}
}

func rowValues(ds *timeseries.Dataset, t time.Time) map[timeseries.MeasurementID]float64 {
	out := make(map[timeseries.MeasurementID]float64)
	for _, id := range ds.IDs() {
		s := ds.Get(id)
		if i, ok := s.IndexOf(t); ok {
			out[id] = s.Values[i]
		}
	}
	return out
}

func TestSetAdaptiveTogglesModels(t *testing.T) {
	mgr, _, _ := trainedManager(t, Config{}, 1)
	mgr.SetAdaptive(true)
	ids := mgr.IDs()
	if !mgr.Model(ids[0], ids[1]).Adaptive() {
		t.Error("SetAdaptive(true) should reach the models")
	}
	mgr.SetAdaptive(false)
	if mgr.Model(ids[0], ids[1]).Adaptive() {
		t.Error("SetAdaptive(false) should reach the models")
	}
}

func TestRunEmptyDataset(t *testing.T) {
	mgr, _, _ := trainedManager(t, Config{}, 1)
	if _, err := mgr.Run(timeseries.NewDataset(), timeseries.MonitoringStart, timeseries.MonitoringEnd); err == nil {
		t.Error("empty dataset: want error")
	}
}

func TestMakePairCanonical(t *testing.T) {
	a := timeseries.MeasurementID{Machine: "b", Metric: "x"}
	b := timeseries.MeasurementID{Machine: "a", Metric: "y"}
	p1, p2 := MakePair(a, b), MakePair(b, a)
	if p1 != p2 {
		t.Error("MakePair should canonicalize order")
	}
	if p1.A != b {
		t.Error("canonical order should put the lesser ID first")
	}
	if p1.String() != "y@a ~ x@b" {
		t.Errorf("String = %q", p1.String())
	}
}

func TestLocalizationEmpty(t *testing.T) {
	var l Localization
	if l.Suspect() != "" {
		t.Error("empty localization should have no suspect")
	}
}

func TestWorstPairs(t *testing.T) {
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	fault := simulator.Fault{
		ID: "wp", Machine: simulator.MachineName("M", 1), Metric: simulator.MetricNetOut,
		Kind: simulator.FaultCorrelationBreak, Magnitude: 2.5,
		Start: day1.Add(8 * time.Hour), End: day1.Add(16 * time.Hour),
	}
	// Monitor only the workload-driven metrics (the paper's §6 selection
	// keeps correlated measurements): links of the workload-independent
	// walk metrics have intrinsically lower fitness and would crowd the
	// ranking.
	ds, gt, err := simulator.Generate(simulator.GroupConfig{
		Name: "M", Machines: 3, Days: 2, Seed: 17, Faults: []simulator.Fault{fault},
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	_ = gt
	watched := timeseries.NewDataset()
	for _, id := range ds.IDs() {
		if id.Metric != simulator.MetricMemFree && id.Metric != simulator.MetricTemp {
			watched.Add(ds.Get(id))
		}
	}
	mgr, err := New(watched.Slice(timeseries.MonitoringStart, day1), Config{
		TrackPairMeans: true,
		Model:          core.Config{Adaptive: true},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Phase 1: calibrate each link's own baseline on the pre-fault hours.
	if _, err := mgr.Run(watched, day1, day1.Add(8*time.Hour)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	baseline := mgr.PairMeans()
	if baseline == nil {
		t.Fatal("PairMeans should be tracked")
	}
	mgr.ResetAccumulators()
	// Phase 2: the fault window.
	if _, err := mgr.Run(watched, day1.Add(8*time.Hour), day1.Add(16*time.Hour)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	worst := mgr.WorstPairs(5)
	if len(worst) != 5 {
		t.Fatalf("WorstPairs = %d entries", len(worst))
	}
	if worst[0].Score >= worst[4].Score {
		t.Error("WorstPairs should sort ascending")
	}
	if worst[0].Samples == 0 {
		t.Error("samples should be counted")
	}
	// The robust drill-down: the link that DROPPED most against its own
	// baseline involves the faulty measurement.
	drops := mgr.WorstPairDrops(baseline, 5)
	if len(drops) != 5 {
		t.Fatalf("WorstPairDrops = %d entries", len(drops))
	}
	faultyID := timeseries.MeasurementID{Machine: fault.Machine, Metric: fault.Metric}
	if drops[0].Pair.A != faultyID && drops[0].Pair.B != faultyID {
		t.Errorf("biggest drop %s (%.3f) does not involve %s", drops[0].Pair, drops[0].Score, faultyID)
	}
	if drops[0].Score <= 0 {
		t.Errorf("biggest drop should be positive, got %.3f", drops[0].Score)
	}
	// Nil baseline yields nil.
	if mgr.WorstPairDrops(nil, 3) != nil {
		t.Error("nil baseline should yield nil")
	}
	// Without tracking, WorstPairs is nil.
	mgr2, ds2, _ := trainedManager(t, Config{}, 2)
	if _, err := mgr2.Run(ds2, day1, day1.Add(5*timeseries.SampleStep)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mgr2.WorstPairs(3) != nil {
		t.Error("WorstPairs without tracking should be nil")
	}
	// ResetAccumulators clears pair means too.
	mgr.ResetAccumulators()
	if mgr.WorstPairs(3) != nil {
		t.Error("WorstPairs after reset should be nil")
	}
}
