package manager

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// CheckpointVersion is the current checkpoint file format version.
// Version 1: gob of Checkpoint{Version, CreatedAt, Cursor, WALSeq, Steps,
// Manager, Store}.
const CheckpointVersion = 1

// ErrNoCheckpoint is returned by ReadCheckpointFile when no checkpoint
// exists yet — the caller should cold-start instead of recovering.
var ErrNoCheckpoint = errors.New("manager: no checkpoint")

// Checkpoint is the durable snapshot of a running monitoring pipeline: the
// manager's full model fleet (the versioned gob produced by Manager.Save),
// the time-series store it was scoring from, the cursor of the next row to
// score, and the WAL sequence number the snapshot reflects. Recovery =
// restore both blobs, replay WAL records with Seq > WALSeq into the store,
// and resume scoring at Cursor; PR 1's deterministic scoring then
// reproduces the exact fitness trajectory of the uninterrupted run.
type Checkpoint struct {
	Version   int
	CreatedAt time.Time
	// Cursor is the timestamp of the next row to score after recovery.
	Cursor time.Time
	// WALSeq is the last WAL sequence number whose samples are reflected
	// in Store (and therefore in the manager's accumulators).
	WALSeq uint64
	// Steps mirrors Manager.Steps at snapshot time (diagnostic only; the
	// authoritative copy is inside Manager).
	Steps int
	// Manager is the gob snapshot written by Manager.Save.
	Manager []byte
	// Store is the tsdb gob snapshot (may be empty for manager-only
	// checkpoints).
	Store []byte

	// Shards is the shard count of a sharded fleet; 0 (or 1 with a
	// Manager blob) means the single-manager layout. Older checkpoints
	// decode with Shards == 0, so the field doubles as the layout switch.
	Shards int
	// Epoch versions the per-shard snapshot files that pair with this
	// checkpoint: shard k's models live in shard-<k>/checkpoint-<Epoch>.
	// Shard files are written first and the coordinator checkpoint —
	// which alone makes an epoch authoritative — is renamed into place
	// last, so a crash mid-checkpoint leaves the previous epoch intact.
	Epoch uint64
	// Coord is the coordinator state blob (shard topology + central
	// aggregator) when Shards > 0.
	Coord []byte

	// Diagnose is the diagnosis engine's state blob (fitness histories,
	// baselines, open/closed incidents) when the pipeline runs with
	// diagnosis attached; empty otherwise. Older checkpoints decode with
	// a nil slice, so the field is backward-compatible within Version 1.
	Diagnose []byte

	// Discover is the discovery tier's state blob (admitted sketches,
	// probe batch, round position, training history rings) when the
	// pipeline runs a bounded pair graph; empty otherwise. Like Diagnose,
	// older checkpoints decode with a nil slice within Version 1.
	Discover []byte
}

// AtomicWrite writes a file crash-atomically: the payload goes to a
// temporary file in the destination directory, is fsynced, renamed over
// path, and the directory is fsynced — a crash at any point leaves either
// the old file or the new one, never a torn write.
func AtomicWrite(path string, write func(w *os.File) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomic write: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomic write sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomic write close: %w", err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomic write rename: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync() // best-effort: make the rename itself durable
		d.Close()
	}
	return nil
}

// WriteCheckpointFile atomically persists a checkpoint: the gob is written
// to a temporary file in the same directory, fsynced, renamed over path,
// and the directory is fsynced — a crash at any point leaves either the
// old checkpoint or the new one, never a torn file.
func WriteCheckpointFile(path string, ck *Checkpoint) (err error) {
	start := time.Now()
	defer func() { obsCheckpointSeconds.Observe(time.Since(start).Seconds()) }()
	if ck.Version == 0 {
		ck.Version = CheckpointVersion
	}
	if err := AtomicWrite(path, func(f *os.File) error {
		if err := gob.NewEncoder(f).Encode(ck); err != nil {
			return fmt.Errorf("checkpoint encode: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	obsCheckpoints.Inc()
	return nil
}

// ReadCheckpointFile loads a checkpoint written by WriteCheckpointFile.
// A missing file is ErrNoCheckpoint; an unreadable or version-mismatched
// file is a hard error (recovering from a half-understood snapshot would
// silently fork the trajectory).
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoCheckpoint
		}
		return nil, fmt.Errorf("checkpoint read: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("checkpoint decode: %w", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	return &ck, nil
}

// Cadence decides when the next automatic checkpoint is due: after
// EverySteps scored rows, or after Interval of wall time, whichever comes
// first. The zero value never fires; Mark records each checkpoint taken.
type Cadence struct {
	// EverySteps triggers a checkpoint after this many scored rows
	// (0 disables the step trigger).
	EverySteps int
	// Interval triggers a checkpoint after this much wall time
	// (0 disables the time trigger).
	Interval time.Duration

	lastSteps int
	lastTime  time.Time
}

// Due reports whether a checkpoint should be taken given the current
// scored-row count and wall time.
func (c *Cadence) Due(steps int, now time.Time) bool {
	if c.EverySteps > 0 && steps-c.lastSteps >= c.EverySteps {
		return true
	}
	if c.Interval > 0 {
		if c.lastTime.IsZero() {
			// First call anchors the timer instead of firing immediately.
			c.lastTime = now
			return false
		}
		if now.Sub(c.lastTime) >= c.Interval {
			return true
		}
	}
	return false
}

// Mark records that a checkpoint was taken at the given progress point.
func (c *Cadence) Mark(steps int, now time.Time) {
	c.lastSteps = steps
	c.lastTime = now
}
