package manager

import (
	"bytes"
	"math"
	"testing"

	"mcorr/internal/alarm"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// smallManager trains a manager over a 10-measurement subset (45 pair
// models) — enough structure for persistence tests at a fraction of the
// serialization volume.
func smallManager(t *testing.T, cfg Config) (*Manager, *timeseries.Dataset) {
	t.Helper()
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "P", Machines: 3, Days: 2, Seed: 19,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sub := timeseries.NewDataset()
	for _, id := range ds.IDs()[:10] {
		sub.Add(ds.Get(id))
	}
	trainEnd := timeseries.MonitoringStart.AddDate(0, 0, 1)
	mgr, err2 := New(sub.Slice(timeseries.MonitoringStart, trainEnd), cfg)
	if err2 != nil {
		t.Fatalf("New: %v", err2)
	}
	return mgr, sub
}

func TestManagerSaveLoadRoundTrip(t *testing.T) {
	mgr, ds := smallManager(t, Config{MeasurementThreshold: 0.5})
	from := timeseries.MonitoringStart.AddDate(0, 0, 1)
	if _, err := mgr.Run(ds, from, from.Add(20*timeseries.SampleStep)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := mgr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	sink := &alarm.MemorySink{}
	r, err := LoadManager(&buf, sink)
	if err != nil {
		t.Fatalf("LoadManager: %v", err)
	}
	if len(r.Pairs()) != len(mgr.Pairs()) {
		t.Fatalf("pairs %d != %d", len(r.Pairs()), len(mgr.Pairs()))
	}
	if len(r.IDs()) != len(mgr.IDs()) {
		t.Fatalf("ids %d != %d", len(r.IDs()), len(mgr.IDs()))
	}
	// Accumulated state survives.
	if r.Steps() != mgr.Steps() {
		t.Errorf("steps %d != %d", r.Steps(), mgr.Steps())
	}
	if math.Abs(r.SystemMean()-mgr.SystemMean()) > 1e-12 {
		t.Errorf("system mean %g != %g", r.SystemMean(), mgr.SystemMean())
	}
	am, bm := mgr.MeasurementMeans(), r.MeasurementMeans()
	for id, v := range am {
		if math.Abs(bm[id]-v) > 1e-12 {
			t.Errorf("measurement mean for %s differs", id)
		}
	}
	// The restored manager keeps scoring identically.
	next := from.Add(20 * timeseries.SampleStep)
	rowA := Row{Time: next, Values: rowValues(ds, next)}
	repA := mgr.Step(rowA)
	repB := r.Step(rowA)
	if math.Abs(repA.System-repB.System) > 1e-12 || repA.ScoredPairs != repB.ScoredPairs {
		t.Errorf("post-restore step diverged: %+v vs %+v", repA.System, repB.System)
	}
	// Localization works on restored accumulators.
	if r.Localize().Suspect() == "" {
		t.Error("restored localization empty")
	}
}

func TestManagerLoadAttachesSink(t *testing.T) {
	mgr, ds := smallManager(t, Config{MeasurementThreshold: 0.99, SystemThreshold: 0.99})
	var buf bytes.Buffer
	if err := mgr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	sink := &alarm.MemorySink{}
	r, err := LoadManager(&buf, sink)
	if err != nil {
		t.Fatalf("LoadManager: %v", err)
	}
	from := timeseries.MonitoringStart.AddDate(0, 0, 1)
	if _, err := r.Run(ds, from, from.Add(10*timeseries.SampleStep)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// With a 0.99 threshold something must fire, proving the sink is live.
	if sink.Len() == 0 {
		t.Error("restored manager should publish to the attached sink")
	}
}

func TestLoadManagerRejectsGarbage(t *testing.T) {
	if _, err := LoadManager(bytes.NewBufferString("nope"), nil); err == nil {
		t.Error("garbage: want error")
	}
}
