package manager

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"mcorr/internal/alarm"
	"mcorr/internal/core"
	"mcorr/internal/mathx"
	"mcorr/internal/timeseries"
)

// managerSnapshot is the gob wire form of a Manager. The alarm sink is a
// live object and is not serialized; LoadManager re-attaches one. Running
// accumulators are persisted so localization state survives a restart.
type managerSnapshot struct {
	Version int
	Config  persistedConfig
	IDs     []timeseries.MeasurementID
	Pairs   []Pair
	Models  [][]byte
	Acc     []accEntry
	SysAcc  [3]float64 // n, mean, m2
	Steps   int
}

// persistedConfig is Config minus the non-serializable sink. Per-pair
// running means (TrackPairMeans) are not persisted; they rebuild from the
// stream after a restore.
type persistedConfig struct {
	Model                core.Config
	Workers              int
	MeasurementThreshold float64
	SystemThreshold      float64
	ProbDelta            float64
	KeepPairScores       bool
	TrackPairMeans       bool
}

type accEntry struct {
	ID    timeseries.MeasurementID
	State [3]float64 // n, mean, m2
}

const managerSnapshotVersion = 1

// Save serializes the manager and all its trained pair models.
func (m *Manager) Save(w io.Writer) error {
	m.mu.Lock()
	snap := managerSnapshot{
		Version: managerSnapshotVersion,
		Config: persistedConfig{
			Model:                m.cfg.Model,
			Workers:              m.cfg.Workers,
			MeasurementThreshold: m.cfg.MeasurementThreshold,
			SystemThreshold:      m.cfg.SystemThreshold,
			ProbDelta:            m.cfg.ProbDelta,
			KeepPairScores:       m.cfg.KeepPairScores,
			TrackPairMeans:       m.cfg.TrackPairMeans,
		},
		IDs:   append([]timeseries.MeasurementID(nil), m.ids...),
		Steps: m.steps,
	}
	n, mean, m2 := m.sysAcc.State()
	snap.SysAcc = [3]float64{float64(n), mean, m2}
	for id, acc := range m.acc {
		an, amean, am2 := acc.State()
		snap.Acc = append(snap.Acc, accEntry{ID: id, State: [3]float64{float64(an), amean, am2}})
	}
	models := make(map[Pair]*core.Model, len(m.models))
	for p, model := range m.models {
		models[p] = model
	}
	m.mu.Unlock()

	// Serialize models outside the manager lock (each model locks
	// itself).
	for p, model := range models {
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			return fmt.Errorf("manager save %s: %w", p, err)
		}
		snap.Pairs = append(snap.Pairs, p)
		snap.Models = append(snap.Models, buf.Bytes())
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("manager save: %w", err)
	}
	return nil
}

// restoreAccumulators rebuilds the per-measurement running means.
func restoreAccumulators(entries []accEntry) map[timeseries.MeasurementID]*mathx.Online {
	out := make(map[timeseries.MeasurementID]*mathx.Online, len(entries))
	for _, e := range entries {
		var o mathx.Online
		o.Restore(int(e.State[0]), e.State[1], e.State[2])
		out[e.ID] = &o
	}
	return out
}

// LoadManager restores a manager saved by Save, attaching the given alarm
// sink (nil discards alarms).
func LoadManager(r io.Reader, sink alarm.Sink) (*Manager, error) {
	var snap managerSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("manager load: %w", err)
	}
	if snap.Version != managerSnapshotVersion {
		return nil, fmt.Errorf("manager load: snapshot version %d, want %d", snap.Version, managerSnapshotVersion)
	}
	if len(snap.Pairs) != len(snap.Models) {
		return nil, fmt.Errorf("manager load: %d pairs but %d models", len(snap.Pairs), len(snap.Models))
	}
	cfg := Config{
		Model:                snap.Config.Model,
		Workers:              snap.Config.Workers,
		MeasurementThreshold: snap.Config.MeasurementThreshold,
		SystemThreshold:      snap.Config.SystemThreshold,
		ProbDelta:            snap.Config.ProbDelta,
		KeepPairScores:       snap.Config.KeepPairScores,
		TrackPairMeans:       snap.Config.TrackPairMeans,
		Sink:                 sink,
	}.withDefaults()
	m := &Manager{
		cfg:    cfg,
		ids:    snap.IDs,
		models: make(map[Pair]*core.Model, len(snap.Pairs)),
		steps:  snap.Steps,
	}
	for i, p := range snap.Pairs {
		model, err := core.LoadModel(bytes.NewReader(snap.Models[i]))
		if err != nil {
			return nil, fmt.Errorf("manager load %s: %w", p, err)
		}
		m.models[p] = model
	}
	m.acc = restoreAccumulators(snap.Acc)
	m.sysAcc.Restore(int(snap.SysAcc[0]), snap.SysAcc[1], snap.SysAcc[2])
	// Rebuild the derived step-path state (sorted pairs, scratch buffers)
	// and start a fresh worker pool for the restored fleet.
	m.initRuntime()
	return m, nil
}
