package manager

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"mcorr/internal/alarm"
	"mcorr/internal/core"
	"mcorr/internal/mathx"
	"mcorr/internal/timeseries"
)

// managerSnapshot is the gob wire form of a Manager. The alarm sink is a
// live object and is not serialized; LoadManager re-attaches one. Running
// accumulators are persisted so localization state survives a restart.
type managerSnapshot struct {
	Version int
	Config  persistedConfig
	IDs     []timeseries.MeasurementID
	Pairs   []Pair
	Models  [][]byte
	Acc     []accEntry
	SysAcc  [3]float64 // n, mean, m2
	Steps   int
}

// persistedConfig is Config minus the non-serializable sink. Per-pair
// running means (TrackPairMeans) are not persisted; they rebuild from the
// stream after a restore.
type persistedConfig struct {
	Model                core.Config
	Workers              int
	MeasurementThreshold float64
	SystemThreshold      float64
	ProbDelta            float64
	KeepPairScores       bool
	TrackPairMeans       bool
	FullRescore          bool
}

type accEntry struct {
	ID    timeseries.MeasurementID
	State [3]float64 // n, mean, m2
}

const managerSnapshotVersion = 1

// Save serializes the manager and all its trained pair models.
func (m *Manager) Save(w io.Writer) error {
	m.mu.Lock()
	snap := managerSnapshot{
		Version: managerSnapshotVersion,
		Config: persistedConfig{
			Model:                m.cfg.Model,
			Workers:              m.cfg.Workers,
			MeasurementThreshold: m.cfg.MeasurementThreshold,
			SystemThreshold:      m.cfg.SystemThreshold,
			ProbDelta:            m.cfg.ProbDelta,
			KeepPairScores:       m.cfg.KeepPairScores,
			TrackPairMeans:       m.cfg.TrackPairMeans,
			FullRescore:          m.cfg.FullRescore,
		},
		IDs: append([]timeseries.MeasurementID(nil), m.ids...),
	}
	models := make(map[Pair]*core.Model, len(m.models))
	for p, model := range m.models {
		models[p] = model
	}
	agg := m.agg
	m.mu.Unlock()
	snap.Acc, snap.SysAcc, snap.Steps = agg.state()

	// Serialize models outside the manager lock (each model locks
	// itself).
	for p, model := range models {
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			return fmt.Errorf("manager save %s: %w", p, err)
		}
		snap.Pairs = append(snap.Pairs, p)
		snap.Models = append(snap.Models, buf.Bytes())
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("manager save: %w", err)
	}
	return nil
}

// restoreAccumulators rebuilds the per-measurement running means.
func restoreAccumulators(entries []accEntry) map[timeseries.MeasurementID]*mathx.Online {
	out := make(map[timeseries.MeasurementID]*mathx.Online, len(entries))
	for _, e := range entries {
		var o mathx.Online
		o.Restore(int(e.State[0]), e.State[1], e.State[2])
		out[e.ID] = &o
	}
	return out
}

// LoadManager restores a manager saved by Save, attaching the given alarm
// sink (nil discards alarms).
func LoadManager(r io.Reader, sink alarm.Sink) (*Manager, error) {
	var snap managerSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("manager load: %w", err)
	}
	if snap.Version != managerSnapshotVersion {
		return nil, fmt.Errorf("manager load: snapshot version %d, want %d", snap.Version, managerSnapshotVersion)
	}
	if len(snap.Pairs) != len(snap.Models) {
		return nil, fmt.Errorf("manager load: %d pairs but %d models", len(snap.Pairs), len(snap.Models))
	}
	cfg := Config{
		Model:                snap.Config.Model,
		Workers:              snap.Config.Workers,
		MeasurementThreshold: snap.Config.MeasurementThreshold,
		SystemThreshold:      snap.Config.SystemThreshold,
		ProbDelta:            snap.Config.ProbDelta,
		KeepPairScores:       snap.Config.KeepPairScores,
		TrackPairMeans:       snap.Config.TrackPairMeans,
		FullRescore:          snap.Config.FullRescore,
		Sink:                 sink,
	}.withDefaults()
	m := &Manager{
		cfg:    cfg,
		ids:    snap.IDs,
		models: make(map[Pair]*core.Model, len(snap.Pairs)),
	}
	for i, p := range snap.Pairs {
		model, err := core.LoadModel(bytes.NewReader(snap.Models[i]))
		if err != nil {
			return nil, fmt.Errorf("manager load %s: %w", p, err)
		}
		m.models[p] = model
	}
	// Rebuild the derived step-path state (sorted pairs, scratch buffers,
	// a fresh aggregator) and start a fresh worker pool, then install the
	// persisted accumulator state into the aggregator.
	m.initRuntime()
	m.agg.restore(snap.Acc, snap.SysAcc, snap.Steps)
	return m, nil
}

// aggSnapshot is the gob wire form of a standalone Aggregator — the
// sharded coordinator's durable aggregation state (the shard managers'
// own aggregators are never fed and not persisted).
type aggSnapshot struct {
	Version int
	Config  persistedConfig
	IDs     []timeseries.MeasurementID
	Acc     []accEntry
	SysAcc  [3]float64
	Steps   int
}

// Save serializes the aggregator: its measurement universe, thresholds
// and running accumulators. The alarm sink is a live object and is not
// serialized; LoadAggregator re-attaches one. Per-pair running means
// (TrackPairMeans) rebuild from the stream after a restore, mirroring
// Manager persistence.
func (g *Aggregator) Save(w io.Writer) error {
	g.mu.Lock()
	cfg := g.cfg
	snap := aggSnapshot{
		Version: managerSnapshotVersion,
		Config: persistedConfig{
			Model:                cfg.Model,
			Workers:              cfg.Workers,
			MeasurementThreshold: cfg.MeasurementThreshold,
			SystemThreshold:      cfg.SystemThreshold,
			ProbDelta:            cfg.ProbDelta,
			KeepPairScores:       cfg.KeepPairScores,
			TrackPairMeans:       cfg.TrackPairMeans,
			FullRescore:          cfg.FullRescore,
		},
		IDs: append([]timeseries.MeasurementID(nil), g.ids...),
	}
	g.mu.Unlock()
	snap.Acc, snap.SysAcc, snap.Steps = g.state()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("aggregator save: %w", err)
	}
	return nil
}

// LoadAggregator restores an aggregator saved by Aggregator.Save,
// attaching the given alarm sink (nil discards alarms).
func LoadAggregator(r io.Reader, sink alarm.Sink) (*Aggregator, error) {
	var snap aggSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("aggregator load: %w", err)
	}
	if snap.Version != managerSnapshotVersion {
		return nil, fmt.Errorf("aggregator load: snapshot version %d, want %d", snap.Version, managerSnapshotVersion)
	}
	cfg := Config{
		Model:                snap.Config.Model,
		Workers:              snap.Config.Workers,
		MeasurementThreshold: snap.Config.MeasurementThreshold,
		SystemThreshold:      snap.Config.SystemThreshold,
		ProbDelta:            snap.Config.ProbDelta,
		KeepPairScores:       snap.Config.KeepPairScores,
		TrackPairMeans:       snap.Config.TrackPairMeans,
		FullRescore:          snap.Config.FullRescore,
		Sink:                 sink,
	}
	g := NewAggregator(snap.IDs, cfg)
	g.restore(snap.Acc, snap.SysAcc, snap.Steps)
	return g, nil
}

// Config returns the aggregator's effective configuration (with defaults
// applied) — the sharded coordinator reads it back after recovery to size
// its shard managers consistently.
func (g *Aggregator) Config() Config {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg
}
