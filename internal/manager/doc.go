// Package manager owns the model fleet: one pairwise transition-
// probability model per measurement pair (l(l−1)/2 links for l
// measurements), trained together and stepped in lockstep over
// synchronized rows, with the paper's three-level fitness aggregation
// Q^{a,b} → Q^a → Q and machine-level problem localization on top.
//
// # Scoring path
//
// Manager.Step scores one Row: a persistent worker pool fans the sorted
// pair list out in fixed chunks (stable order → reproducible tie-breaks),
// each pair's model produces an Outcome, and an Aggregator folds the
// outcomes — always in canonical pair order — into per-measurement and
// system accumulators, raising alarms through the configured sink. The
// fold order is what makes trajectories bit-reproducible: the same rows
// always produce the same float64s, whatever the worker count.
//
// # Split score/aggregate surface
//
// The scoring and aggregation halves are usable separately, which is how
// the shard package composes them: Manager.ScoreInto scores a subset of
// the global pair list directly into a shared Outcome slice at caller-
// chosen indices, and a standalone Aggregator (NewAggregator, or
// Manager.Aggregator for the built-in one) folds any such slice with the
// exact same code path Step uses. NewSubset trains a manager over a
// filtered pair set; FromModels rebuilds one around already-trained
// models without retraining — the resharding primitive.
//
// # Persistence
//
// Save/LoadManager round-trip the full fleet (models + accumulators) as
// versioned gob; Aggregator.Save/LoadAggregator do the same for a
// standalone aggregator. Checkpoint and WriteCheckpointFile/
// ReadCheckpointFile define the crash-atomic on-disk checkpoint format
// shared by the durable pipeline, including the sharded layout's epoch
// fields; Cadence decides when automatic checkpoints are due.
package manager
