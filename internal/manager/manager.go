// Package manager orchestrates the paper's system-level analysis: it
// maintains one pairwise correlation model per link of the measurement
// graph (l(l−1)/2 models for l measurements, §5), feeds synchronized
// sample rows through them concurrently, aggregates fitness scores at the
// paper's three levels — pair Q^{a,b}, measurement Q^a, system Q — rolls
// measurements up to machines for problem localization, and raises alarms
// when scores breach thresholds.
package manager

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"mcorr/internal/alarm"
	"mcorr/internal/core"
	"mcorr/internal/mathx"
	"mcorr/internal/obs"
	"mcorr/internal/timeseries"
)

// Pair is an unordered measurement pair in canonical (Less) order.
type Pair struct {
	A, B timeseries.MeasurementID
}

// MakePair returns the canonical pair for two measurements.
func MakePair(a, b timeseries.MeasurementID) Pair {
	if b.Less(a) {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// String renders the pair as "a ~ b".
func (p Pair) String() string { return p.A.String() + " ~ " + p.B.String() }

// Config controls a Manager.
type Config struct {
	// Model is the per-pair model configuration (core.Config defaults
	// apply). Set Model.Adaptive for the paper's adaptive mode.
	Model core.Config
	// Workers bounds concurrent model training/scoring; default
	// GOMAXPROCS.
	Workers int
	// MeasurementThreshold raises a measurement alarm when Q^a falls
	// below it (0 disables).
	MeasurementThreshold float64
	// SystemThreshold raises a system alarm when Q falls below it
	// (0 disables).
	SystemThreshold float64
	// ProbDelta is the paper's δ: a pair alarm fires when the observed
	// transition probability falls below it (0 disables).
	ProbDelta float64
	// Sink receives alarms; nil discards them.
	Sink alarm.Sink
	// KeepPairScores includes every pair's fitness in each StepReport
	// (memory-heavy for large l; reports allocate a map per step).
	KeepPairScores bool
	// TrackPairMeans maintains a running mean fitness per link, enabling
	// WorstPairs — the paper's finest drill-down level (Q^{a,b}).
	TrackPairMeans bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	// Every published alarm flows through a CountingSink so alarm volume by
	// severity/scope is on the ops surface (mcorr_alarm_raised_total) even
	// when the caller provides no sink at all.
	if _, counted := c.Sink.(alarm.CountingSink); !counted {
		c.Sink = alarm.CountingSink{Next: c.Sink}
	}
	return c
}

// Row is one synchronized observation of every measurement at one time.
// Missing measurements (gaps) are simply absent from the map.
type Row struct {
	Time   time.Time
	Values map[timeseries.MeasurementID]float64
}

// StepReport is the outcome of scoring one row.
type StepReport struct {
	Time time.Time
	// System is Q_t: the mean of the per-measurement scores. NaN when
	// nothing was scored.
	System float64
	// Measurements holds Q^a for every measurement with at least one
	// scored link this step.
	Measurements map[timeseries.MeasurementID]float64
	// Pairs holds Q^{a,b} per pair when Config.KeepPairScores is set.
	Pairs map[Pair]float64
	// ScoredPairs counts the links that produced a score this step.
	ScoredPairs int
}

// Manager owns the model fleet. All methods are safe for concurrent use,
// but rows must be fed in time order.
type Manager struct {
	cfg Config
	ids []timeseries.MeasurementID

	mu      sync.Mutex
	models  map[Pair]*core.Model
	acc     map[timeseries.MeasurementID]*mathx.Online // running Q^a means
	pairAcc map[Pair]*mathx.Online                     // running Q^{a,b} means
	sysAcc  mathx.Online
	steps   int

	// Step-path state, built once by initRuntime: the stable sorted pair
	// slice (chunked identically every step, so work distribution and any
	// tie-dependent output are reproducible), per-pair measurement indices
	// for map-free Q^a aggregation, reusable outcome/accumulation scratch,
	// and the persistent worker pool.
	pairs    []Pair
	pairIdx  [][2]int      // pairs[i] → indices into ids
	outcomes []pairOutcome // reused every step
	sumBuf   []float64     // per-measurement fitness sums, reused
	cntBuf   []int         // per-measurement scored-link counts, reused
	alarmBuf []alarm.Alarm // alarms gathered during aggregation, reused
	curRow   Row           // row being scored, read by pool workers
	rangeFn  func(lo, hi int)
	pool     *workerPool
}

// workerPool is the manager's persistent scoring pool: a fixed set of
// goroutines created once that execute half-open index ranges on demand,
// replacing the per-Step goroutine spawn. Workers hold only the task
// channel — never the Manager — so an abandoned manager stays collectable;
// its finalizer closes the channel and the workers exit.
type workerPool struct {
	tasks chan poolTask
	runWG sync.WaitGroup // outstanding tasks of the current run
	once  sync.Once
}

type poolTask struct {
	lo, hi int
	fn     func(lo, hi int)
	done   *sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask, workers)}
	for w := 0; w < workers; w++ {
		go poolWorker(p.tasks)
	}
	// The finalizer lives on the small pool struct — not the Manager — so
	// an abandoned manager's model fleet is collected promptly and only
	// the pool header survives the extra finalizer cycle before its
	// workers are told to exit.
	runtime.SetFinalizer(p, (*workerPool).close)
	return p
}

func poolWorker(tasks <-chan poolTask) {
	for t := range tasks {
		t.fn(t.lo, t.hi)
		t.done.Done()
	}
}

// run splits [0, n) into ceil(n/workers)-sized chunks, hands all but the
// first to the pool, executes the first chunk on the calling goroutine,
// and blocks until every chunk is done. Calls must not overlap; Step's
// lock (and New's construction phase) serialize them.
func (p *workerPool) run(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunk := (n + workers - 1) / workers
	first := n
	if chunk < n {
		first = chunk
	}
	for lo := first; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.runWG.Add(1)
		p.tasks <- poolTask{lo: lo, hi: hi, fn: fn, done: &p.runWG}
	}
	obsPoolQueueDepth.Set(float64(len(p.tasks)))
	fn(0, first)
	p.runWG.Wait()
}

// close shuts the pool down; idempotent.
func (p *workerPool) close() {
	p.once.Do(func() { close(p.tasks) })
}

// Close stops the manager's persistent worker pool. It is safe to call
// more than once, but the manager must not be stepped afterwards. Managers
// that are simply dropped are cleaned up by a finalizer; Close exists for
// callers that want deterministic shutdown.
func (m *Manager) Close() {
	if m.pool != nil {
		m.pool.close()
	}
}

// initRuntime builds the step-path state. The models map must be final.
func (m *Manager) initRuntime() {
	m.pairs = make([]Pair, 0, len(m.models))
	for p := range m.models {
		m.pairs = append(m.pairs, p)
	}
	sort.Slice(m.pairs, func(i, j int) bool {
		if m.pairs[i].A != m.pairs[j].A {
			return m.pairs[i].A.Less(m.pairs[j].A)
		}
		return m.pairs[i].B.Less(m.pairs[j].B)
	})
	idIndex := make(map[timeseries.MeasurementID]int, len(m.ids))
	for i, id := range m.ids {
		idIndex[id] = i
	}
	m.pairIdx = make([][2]int, len(m.pairs))
	for i, p := range m.pairs {
		ia, oka := idIndex[p.A]
		ib, okb := idIndex[p.B]
		if !oka {
			ia = -1 // defensive: a pair not covered by ids skips Q^a aggregation
		}
		if !okb {
			ib = -1
		}
		m.pairIdx[i] = [2]int{ia, ib}
	}
	m.outcomes = make([]pairOutcome, len(m.pairs))
	m.sumBuf = make([]float64, len(m.ids))
	m.cntBuf = make([]int, len(m.ids))
	m.rangeFn = m.scoreRange
	if m.pool == nil {
		m.pool = newWorkerPool(m.cfg.Workers)
	}
}

// New trains one model per measurement pair from the history dataset.
// Pairs whose aligned history is empty are skipped (and absent from
// Pairs()). At least two measurements are required.
func New(history *timeseries.Dataset, cfg Config) (*Manager, error) {
	trainStart := time.Now()
	defer func() { obsTrainSeconds.Observe(time.Since(trainStart).Seconds()) }()
	cfg = cfg.withDefaults()
	ids := history.IDs()
	if len(ids) < 2 {
		return nil, fmt.Errorf("manager needs at least 2 measurements, got %d", len(ids))
	}
	m := &Manager{
		cfg:    cfg,
		ids:    ids,
		models: make(map[Pair]*core.Model),
		acc:    make(map[timeseries.MeasurementID]*mathx.Online),
	}
	m.pool = newWorkerPool(cfg.Workers)

	// Train the l(l−1)/2 links on the same pool that will score them; the
	// results slice keeps training deterministic (first error in pair
	// order, not channel-arrival order).
	pairs := history.Pairs()
	type result struct {
		model *core.Model
		err   error
	}
	results := make([]result, len(pairs))
	m.pool.run(len(pairs), cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pr := pairs[i]
			pts, _, err := timeseries.AlignPair(history.Get(pr[0]), history.Get(pr[1]))
			if err != nil || len(pts) == 0 {
				// No overlap: skip this link.
				continue
			}
			model, err := core.Train(pts, cfg.Model)
			if err != nil {
				results[i] = result{err: fmt.Errorf("train %s ~ %s: %w", pr[0], pr[1], err)}
				continue
			}
			results[i] = result{model: model}
		}
	})
	for i, r := range results {
		switch {
		case r.err != nil:
			m.Close()
			return nil, r.err
		case r.model != nil:
			m.models[MakePair(pairs[i][0], pairs[i][1])] = r.model
		}
	}
	if len(m.models) == 0 {
		m.Close()
		return nil, fmt.Errorf("manager: no trainable pairs: %w", core.ErrNoData)
	}
	m.initRuntime()
	return m, nil
}

// IDs returns the measurements the manager watches.
func (m *Manager) IDs() []timeseries.MeasurementID {
	return append([]timeseries.MeasurementID(nil), m.ids...)
}

// Pairs returns the trained links in stable order.
func (m *Manager) Pairs() []Pair {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Pair(nil), m.pairs...)
}

// Model returns the trained model for a pair (nil when absent).
func (m *Manager) Model(a, b timeseries.MeasurementID) *core.Model {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.models[MakePair(a, b)]
}

// pairOutcome is one link's result for a step.
type pairOutcome struct {
	fitness float64
	prob    float64
	scored  bool
	// gap marks a link reset by a missing/non-finite value; grown marks an
	// adaptive grid growth. Both are tallied into obs counters during the
	// single-threaded aggregation pass.
	gap   bool
	grown bool
}

// Step scores one synchronized row across every link, updates the running
// accumulators, and publishes alarms. The fan-out runs on the persistent
// worker pool over the cached sorted pair slice — identical chunking every
// step — and the aggregation scratch is reused, so a step allocates
// nothing beyond the returned report's maps. The phases (score →
// aggregate → alarm) are traced via obs.StartSpan and the step latency,
// gap/growth counts and fitness distributions land on the ops surface.
func (m *Manager) Step(row Row) StepReport {
	stepStart := time.Now()
	sp := obs.StartSpan("manager.step")
	m.mu.Lock()
	defer m.mu.Unlock()
	report := StepReport{
		Time:         row.Time,
		System:       math.NaN(),
		Measurements: make(map[timeseries.MeasurementID]float64),
	}
	if m.cfg.KeepPairScores {
		report.Pairs = make(map[Pair]float64, len(m.pairs))
	}

	// Fan the links out over the persistent pool. The happens-before edges
	// of the task channel and the wait group order the curRow/outcomes
	// accesses between this goroutine and the workers.
	sp.Phase("score")
	m.curRow = row
	m.pool.run(len(m.pairs), m.cfg.Workers, m.rangeFn)
	m.curRow = Row{}

	// Aggregate Q^{a,b} → Q^a → Q into the reused index-based scratch.
	// Alarms are gathered into the reused buffer and published together in
	// the alarm phase, preserving the pair → measurement → system order.
	sp.Phase("aggregate")
	m.alarmBuf = m.alarmBuf[:0]
	var gaps, growths uint64
	for i := range m.sumBuf {
		m.sumBuf[i] = 0
		m.cntBuf[i] = 0
	}
	for i := range m.outcomes {
		o := &m.outcomes[i]
		if o.gap {
			gaps++
		}
		if o.grown {
			growths++
		}
		if !o.scored {
			continue
		}
		p := m.pairs[i]
		report.ScoredPairs++
		obsFitnessPair.Observe(o.fitness)
		if report.Pairs != nil {
			report.Pairs[p] = o.fitness
		}
		if m.cfg.TrackPairMeans {
			if m.pairAcc == nil {
				m.pairAcc = make(map[Pair]*mathx.Online, len(m.models))
			}
			if m.pairAcc[p] == nil {
				m.pairAcc[p] = &mathx.Online{}
			}
			m.pairAcc[p].Add(o.fitness)
		}
		if ab := m.pairIdx[i]; ab[0] >= 0 && ab[1] >= 0 {
			m.sumBuf[ab[0]] += o.fitness
			m.cntBuf[ab[0]]++
			m.sumBuf[ab[1]] += o.fitness
			m.cntBuf[ab[1]]++
		}
		if m.cfg.ProbDelta > 0 && o.prob < m.cfg.ProbDelta {
			m.alarmBuf = append(m.alarmBuf, alarm.Alarm{
				Time: row.Time, Severity: alarm.SeverityWarning, Scope: alarm.ScopePair,
				Measurement: p.A, Peer: p.B,
				Score: o.prob, Threshold: m.cfg.ProbDelta,
				Message: "transition probability below delta",
			})
		}
	}
	var sysSum float64
	var sysN int
	for k, c := range m.cntBuf {
		if c == 0 {
			continue
		}
		id := m.ids[k]
		q := m.sumBuf[k] / float64(c)
		report.Measurements[id] = q
		obsFitnessMeas.Observe(q)
		if m.acc[id] == nil {
			m.acc[id] = &mathx.Online{}
		}
		m.acc[id].Add(q)
		sysSum += q
		sysN++
		if m.cfg.MeasurementThreshold > 0 && q < m.cfg.MeasurementThreshold {
			m.alarmBuf = append(m.alarmBuf, alarm.Alarm{
				Time: row.Time, Severity: alarm.SeverityWarning, Scope: alarm.ScopeMeasurement,
				Measurement: id, Score: q, Threshold: m.cfg.MeasurementThreshold,
				Message: "measurement fitness below threshold",
			})
		}
	}
	if sysN > 0 {
		report.System = sysSum / float64(sysN)
		obsFitnessSys.Observe(report.System)
		m.sysAcc.Add(report.System)
		m.steps++
		if m.cfg.SystemThreshold > 0 && report.System < m.cfg.SystemThreshold {
			m.alarmBuf = append(m.alarmBuf, alarm.Alarm{
				Time: row.Time, Severity: alarm.SeverityCritical, Scope: alarm.ScopeSystem,
				Score: report.System, Threshold: m.cfg.SystemThreshold,
				Message: "system fitness below threshold",
			})
		}
	}
	sp.Phase("alarm")
	for i := range m.alarmBuf {
		m.publish(m.alarmBuf[i])
	}
	sp.End()
	obsRows.Inc()
	if report.ScoredPairs > 0 {
		obsPairsScored.Add(uint64(report.ScoredPairs))
	}
	if gaps > 0 {
		obsGaps.Add(gaps)
	}
	if growths > 0 {
		obsGrowths.Add(growths)
	}
	obsStepSeconds.Observe(time.Since(stepStart).Seconds())
	return report
}

// scoreRange scores pairs [lo, hi) of the current row into the outcome
// buffer; it is the unit of work executed by pool workers (and by Step
// itself for the first chunk).
func (m *Manager) scoreRange(lo, hi int) {
	row := m.curRow
	for i := lo; i < hi; i++ {
		m.outcomes[i] = m.stepPair(m.pairs[i], row)
	}
}

// stepPair scores one link for the row. A missing or non-finite value on
// either side is a monitoring gap: the link's chain resets unscored.
func (m *Manager) stepPair(p Pair, row Row) pairOutcome {
	model := m.models[p]
	va, oka := row.Values[p.A]
	vb, okb := row.Values[p.B]
	if !oka || !okb || math.IsNaN(va) || math.IsNaN(vb) {
		model.Reset()
		return pairOutcome{gap: true}
	}
	res := model.Step(mathx.Point2{X: va, Y: vb})
	return pairOutcome{fitness: res.Fitness, prob: res.Prob, scored: res.Scored, grown: res.Grown}
}

func (m *Manager) publish(a alarm.Alarm) {
	if m.cfg.Sink != nil {
		m.cfg.Sink.Publish(a)
	}
}

// Run replays a dataset through Step row by row over [from, to) and
// returns the per-step reports. The dataset's series must share the
// sampling grid.
func (m *Manager) Run(ds *timeseries.Dataset, from, to time.Time) ([]StepReport, error) {
	ids := ds.IDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("manager run: empty dataset")
	}
	step := ds.Get(ids[0]).Step
	var reports []StepReport
	for t := from; t.Before(to); t = t.Add(step) {
		row := Row{Time: t, Values: make(map[timeseries.MeasurementID]float64, len(ids))}
		for _, id := range ids {
			s := ds.Get(id)
			if i, ok := s.IndexOf(t); ok {
				row.Values[id] = s.Values[i]
			}
		}
		reports = append(reports, m.Step(row))
	}
	return reports, nil
}

// MeasurementMeans returns the running mean Q^a per measurement since the
// last ResetAccumulators.
func (m *Manager) MeasurementMeans() map[timeseries.MeasurementID]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[timeseries.MeasurementID]float64, len(m.acc))
	for id, o := range m.acc {
		out[id] = o.Mean()
	}
	return out
}

// SystemMean returns the running mean system fitness Q.
func (m *Manager) SystemMean() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sysAcc.Mean()
}

// Steps returns how many rows produced a system score.
func (m *Manager) Steps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steps
}

// ResetAccumulators clears the running means (e.g. between experiment
// phases) without touching the models.
func (m *Manager) ResetAccumulators() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acc = make(map[timeseries.MeasurementID]*mathx.Online)
	m.pairAcc = nil
	m.sysAcc = mathx.Online{}
	m.steps = 0
}

// PairScore is one link's accumulated mean fitness.
type PairScore struct {
	Pair  Pair
	Score float64
	// Samples is how many scored transitions contributed.
	Samples int
}

// WorstPairs returns the k links with the lowest mean fitness since the
// last ResetAccumulators — the paper's Q^{a,b} drill-down ("all the links
// leading to a measurement have problems ⇒ that measurement is the
// source"). It requires Config.TrackPairMeans; otherwise it returns nil.
func (m *Manager) WorstPairs(k int) []PairScore {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pairAcc == nil {
		return nil
	}
	out := make([]PairScore, 0, len(m.pairAcc))
	for p, o := range m.pairAcc {
		out = append(out, PairScore{Pair: p, Score: o.Mean(), Samples: o.N()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A.Less(out[j].Pair.A)
		}
		return out[i].Pair.B.Less(out[j].Pair.B)
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// PairMeans returns the accumulated mean fitness per link since the last
// ResetAccumulators (nil unless Config.TrackPairMeans).
func (m *Manager) PairMeans() map[Pair]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pairAcc == nil {
		return nil
	}
	out := make(map[Pair]float64, len(m.pairAcc))
	for p, o := range m.pairAcc {
		out[p] = o.Mean()
	}
	return out
}

// WorstPairDrops ranks links by how far their current mean fitness fell
// below a baseline captured earlier with PairMeans — the robust form of
// the Q^{a,b} drill-down: links differ in intrinsic predictability, so a
// drop against the link's own normal level localizes better than the
// absolute score. PairScore.Score holds the drop (baseline − current),
// descending. Links absent from the baseline are skipped.
func (m *Manager) WorstPairDrops(baseline map[Pair]float64, k int) []PairScore {
	current := m.PairMeans()
	if current == nil || baseline == nil {
		return nil
	}
	out := make([]PairScore, 0, len(current))
	m.mu.Lock()
	for p, cur := range current {
		base, ok := baseline[p]
		if !ok {
			continue
		}
		n := 0
		if acc := m.pairAcc[p]; acc != nil {
			n = acc.N()
		}
		out = append(out, PairScore{Pair: p, Score: base - cur, Samples: n})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A.Less(out[j].Pair.A)
		}
		return out[i].Pair.B.Less(out[j].Pair.B)
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// MachineScore is one machine's average fitness (the paper's Figure 14).
type MachineScore struct {
	Machine string
	Score   float64
	// Measurements is how many measurements contributed.
	Measurements int
}

// Localization is the problem-localization report: machines ranked by
// average fitness, worst first.
type Localization struct {
	Machines []MachineScore
}

// Suspect returns the machine with the lowest score (the localization
// answer), or "" when no scores exist.
func (l Localization) Suspect() string {
	if len(l.Machines) == 0 {
		return ""
	}
	return l.Machines[0].Machine
}

// Localize rolls the accumulated per-measurement means up to machines and
// ranks them worst-first (the paper's drill-down from Q to the problem
// source).
func (m *Manager) Localize() Localization {
	means := m.MeasurementMeans()
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for id, q := range means {
		if math.IsNaN(q) {
			continue
		}
		sums[id.Machine] += q
		counts[id.Machine]++
	}
	var out Localization
	for machine, s := range sums {
		out.Machines = append(out.Machines, MachineScore{
			Machine: machine, Score: s / float64(counts[machine]), Measurements: counts[machine],
		})
	}
	sort.Slice(out.Machines, func(i, j int) bool {
		if out.Machines[i].Score != out.Machines[j].Score {
			return out.Machines[i].Score < out.Machines[j].Score
		}
		return out.Machines[i].Machine < out.Machines[j].Machine
	})
	return out
}

// SetAdaptive flips online updating on every model (offline vs adaptive
// comparison runs).
func (m *Manager) SetAdaptive(adaptive bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, model := range m.models {
		model.SetAdaptive(adaptive)
	}
}

// ResetChains clears every model's Markov position (e.g. when switching
// between disjoint data windows).
func (m *Manager) ResetChains() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, model := range m.models {
		model.Reset()
	}
}
