package manager

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mcorr/internal/alarm"
	"mcorr/internal/core"
	"mcorr/internal/mathx"
	"mcorr/internal/obs"
	"mcorr/internal/timeseries"
)

// Pair is an unordered measurement pair in canonical (Less) order.
type Pair struct {
	A, B timeseries.MeasurementID
}

// MakePair returns the canonical pair for two measurements.
func MakePair(a, b timeseries.MeasurementID) Pair {
	if b.Less(a) {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// String renders the pair as "a ~ b". This is also the pair's canonical
// shard key (see internal/shard): it must stay stable across releases or
// persisted shard assignments would silently move.
func (p Pair) String() string { return p.A.String() + " ~ " + p.B.String() }

// Less orders pairs canonically: by A, then by B. It is the global pair
// order every scoring fabric must use so aggregation sums floats in one
// fixed sequence.
func (p Pair) Less(q Pair) bool {
	if p.A != q.A {
		return p.A.Less(q.A)
	}
	return p.B.Less(q.B)
}

// SortPairs sorts pairs into the canonical global order (Pair.Less).
func SortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Less(pairs[j]) })
}

// Config controls a Manager.
type Config struct {
	// Model is the per-pair model configuration (core.Config defaults
	// apply). Set Model.Adaptive for the paper's adaptive mode.
	Model core.Config
	// Workers bounds concurrent model training/scoring; default
	// GOMAXPROCS.
	Workers int
	// MeasurementThreshold raises a measurement alarm when Q^a falls
	// below it (0 disables).
	MeasurementThreshold float64
	// SystemThreshold raises a system alarm when Q falls below it
	// (0 disables).
	SystemThreshold float64
	// ProbDelta is the paper's δ: a pair alarm fires when the observed
	// transition probability falls below it (0 disables).
	ProbDelta float64
	// Sink receives alarms; nil discards them.
	Sink alarm.Sink
	// KeepPairScores includes every pair's fitness in each StepReport
	// (memory-heavy for large l; reports allocate a map per step).
	KeepPairScores bool
	// TrackPairMeans maintains a running mean fitness per link, enabling
	// WorstPairs — the paper's finest drill-down level (Q^{a,b}).
	TrackPairMeans bool
	// FullRescore disables the incremental dirty-pair scheduler: every
	// pair re-scores through its model on every row, exactly as if no
	// outcome had ever been cached. Trajectories are bit-identical either
	// way — the incremental path's carry-forward is exact by construction —
	// so this exists as the reference mode for property tests and as an
	// operational escape hatch.
	FullRescore bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	// Every published alarm flows through a CountingSink so alarm volume by
	// severity/scope is on the ops surface (mcorr_alarm_raised_total) even
	// when the caller provides no sink at all.
	if _, counted := c.Sink.(alarm.CountingSink); !counted {
		c.Sink = alarm.CountingSink{Next: c.Sink}
	}
	// With the probability gate off (δ = 0) nothing downstream reads
	// Outcome.Prob — StepReport never carries it — so the models can skip
	// the normalizer entirely on the scoring hot path. Fitness is
	// unaffected (see core.Config.OmitProbs).
	if c.ProbDelta <= 0 {
		c.Model.OmitProbs = true
	}
	return c
}

// Row is one synchronized observation of every measurement at one time.
// Missing measurements (gaps) are simply absent from the map.
type Row struct {
	Time   time.Time
	Values map[timeseries.MeasurementID]float64
}

// StepReport is the outcome of scoring one row.
type StepReport struct {
	Time time.Time
	// System is Q_t: the mean of the per-measurement scores. NaN when
	// nothing was scored.
	System float64
	// Measurements holds Q^a for every measurement with at least one
	// scored link this step.
	Measurements map[timeseries.MeasurementID]float64
	// Pairs holds Q^{a,b} per pair when Config.KeepPairScores is set.
	Pairs map[Pair]float64
	// ScoredPairs counts the links that produced a score this step.
	ScoredPairs int
	// GrownPairs counts the links whose adaptive grid grew this step —
	// zero once the fleet has settled on the stream's operating region
	// (benchmarks warm up until a full pass reports no growth).
	GrownPairs int
}

// Manager owns the model fleet. All methods are safe for concurrent use,
// but rows must be fed in time order.
type Manager struct {
	cfg Config
	ids []timeseries.MeasurementID

	mu     sync.Mutex
	models map[Pair]*core.Model
	agg    *Aggregator

	// Step-path state, built once by initRuntime: the stable sorted pair
	// slice (chunked identically every step, so work distribution and any
	// tie-dependent output are reproducible), per-pair measurement indices
	// for map-free Q^a aggregation, reusable outcome scratch, and the
	// persistent worker pool.
	pairs     []Pair
	pairIdx   [][2]int      // pairs[i] → indices into ids
	modelAt   []*core.Model // pairs[i]'s model, so the hot loop never hashes a Pair
	outcomes  []Outcome     // reused every step; doubles as the carry-forward cache
	curRow    Row           // row being scored, read by pool workers
	curDst    []Outcome     // ScoreInto destination, read by pool workers
	curIdx    []int         // ScoreInto local→global index map
	rangeFn   func(lo, hi int)
	scatterFn func(lo, hi int)
	pool      *workerPool

	// Incremental dirty-pair state. steadyOK[i] marks pair i as steady: its
	// model holds a frozen self-run whose outcome is cached in outcomes[i],
	// and steadyB[4i:4i+4] = {xlo, xhi, ylo, yhi} are the run cell's bounds.
	// While both of the pair's values stay inside those half-open bounds the
	// next Step provably repeats the cached outcome, so the pair is skipped
	// (the model just logs the deferred update via NoteSkipped). Any rebuild
	// of the runtime (New/NewSubset/FromModels/LoadManager, and therefore
	// every reshard and recovery) starts all-dirty; the models re-freeze on
	// the first row and the caches repopulate deterministically.
	steadyOK []bool
	steadyB  []float64
	// valBuf/okBuf hold the current row's values indexed by measurement
	// position in ids, filled once per row so the per-pair hot loop reads
	// slices instead of hashing the row map twice per pair.
	valBuf []float64
	okBuf  []bool
	// stepSkipped counts skipped pairs of the row being scored; workers add
	// atomically per chunk, Step/ScoreInto read it after the pool drains.
	stepSkipped uint64
	// lastDirty is the dirty (re-scored) pair count of the last row, for
	// the ops gauge (the coordinator sums it across shards).
	lastDirty int
}

// workerPool is the manager's persistent scoring pool: a fixed set of
// goroutines created once that execute half-open index ranges on demand,
// replacing the per-Step goroutine spawn. Workers hold only the task
// channel — never the Manager — so an abandoned manager stays collectable;
// its finalizer closes the channel and the workers exit.
type workerPool struct {
	tasks chan poolTask
	runWG sync.WaitGroup // outstanding tasks of the current run
	once  sync.Once
}

type poolTask struct {
	lo, hi int
	fn     func(lo, hi int)
	done   *sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask, workers)}
	for w := 0; w < workers; w++ {
		go poolWorker(p.tasks)
	}
	// The finalizer lives on the small pool struct — not the Manager — so
	// an abandoned manager's model fleet is collected promptly and only
	// the pool header survives the extra finalizer cycle before its
	// workers are told to exit.
	runtime.SetFinalizer(p, (*workerPool).close)
	return p
}

func poolWorker(tasks <-chan poolTask) {
	for t := range tasks {
		t.fn(t.lo, t.hi)
		t.done.Done()
	}
}

// run splits [0, n) into ceil(n/workers)-sized chunks, hands all but the
// first to the pool, executes the first chunk on the calling goroutine,
// and blocks until every chunk is done. Calls must not overlap; Step's
// lock (and New's construction phase) serialize them.
func (p *workerPool) run(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunk := (n + workers - 1) / workers
	first := n
	if chunk < n {
		first = chunk
	}
	for lo := first; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.runWG.Add(1)
		p.tasks <- poolTask{lo: lo, hi: hi, fn: fn, done: &p.runWG}
	}
	obsPoolQueueDepth.Set(float64(len(p.tasks)))
	fn(0, first)
	p.runWG.Wait()
}

// close shuts the pool down; idempotent.
func (p *workerPool) close() {
	p.once.Do(func() { close(p.tasks) })
}

// Close stops the manager's persistent worker pool. It is safe to call
// more than once, but the manager must not be stepped afterwards. Managers
// that are simply dropped are cleaned up by a finalizer; Close exists for
// callers that want deterministic shutdown.
func (m *Manager) Close() {
	if m.pool != nil {
		m.pool.close()
	}
}

// initRuntime builds the step-path state. The models map must be final.
func (m *Manager) initRuntime() {
	m.pairs = make([]Pair, 0, len(m.models))
	for p := range m.models {
		m.pairs = append(m.pairs, p)
	}
	SortPairs(m.pairs)
	m.pairIdx = BuildPairIndex(m.ids, m.pairs)
	m.modelAt = make([]*core.Model, len(m.pairs))
	for i, p := range m.pairs {
		m.modelAt[i] = m.models[p]
	}
	m.outcomes = make([]Outcome, len(m.pairs))
	// All-dirty: every pair re-scores on the first row after a (re)build,
	// which is what lets reshard and recovery skip persisting these caches.
	m.steadyOK = make([]bool, len(m.pairs))
	m.steadyB = make([]float64, 4*len(m.pairs))
	m.valBuf = make([]float64, len(m.ids))
	m.okBuf = make([]bool, len(m.ids))
	m.rangeFn = m.scoreRange
	m.scatterFn = m.scatterRange
	if m.agg == nil {
		m.agg = NewAggregator(m.ids, m.cfg)
	}
	if m.pool == nil {
		m.pool = newWorkerPool(m.cfg.Workers)
	}
}

// BuildPairIndex maps each pair to the indices of its endpoints in ids
// (−1 when an endpoint is not in ids, which skips Q^a aggregation for
// that link). Both the Manager and the sharded coordinator derive their
// aggregation index from this one helper so the two paths cannot drift.
func BuildPairIndex(ids []timeseries.MeasurementID, pairs []Pair) [][2]int {
	idIndex := make(map[timeseries.MeasurementID]int, len(ids))
	for i, id := range ids {
		idIndex[id] = i
	}
	out := make([][2]int, len(pairs))
	for i, p := range pairs {
		ia, oka := idIndex[p.A]
		ib, okb := idIndex[p.B]
		if !oka {
			ia = -1
		}
		if !okb {
			ib = -1
		}
		out[i] = [2]int{ia, ib}
	}
	return out
}

// New trains one model per measurement pair from the history dataset.
// Pairs whose aligned history is empty are skipped (and absent from
// Pairs()). At least two measurements are required.
func New(history *timeseries.Dataset, cfg Config) (*Manager, error) {
	return NewSubset(history, cfg, nil)
}

// NewSubset trains a manager over only the pairs accepted by keep (nil
// keeps every pair) — the building block of the sharded scoring fabric,
// where each shard owns the models of its assigned pair subset. Unlike
// New, a non-nil keep tolerates an empty resulting fleet: a shard with no
// pairs is legal and simply scores nothing.
func NewSubset(history *timeseries.Dataset, cfg Config, keep func(Pair) bool) (*Manager, error) {
	trainStart := time.Now()
	defer func() { obsTrainSeconds.Observe(time.Since(trainStart).Seconds()) }()
	cfg = cfg.withDefaults()
	ids := history.IDs()
	if len(ids) < 2 {
		return nil, fmt.Errorf("manager needs at least 2 measurements, got %d", len(ids))
	}
	m := &Manager{
		cfg:    cfg,
		ids:    ids,
		models: make(map[Pair]*core.Model),
	}
	m.pool = newWorkerPool(cfg.Workers)

	// Train the kept links on the same pool that will score them; the
	// results slice keeps training deterministic (first error in pair
	// order, not channel-arrival order).
	pairs := history.Pairs()
	type result struct {
		model *core.Model
		err   error
	}
	results := make([]result, len(pairs))
	m.pool.run(len(pairs), cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pr := pairs[i]
			if keep != nil && !keep(MakePair(pr[0], pr[1])) {
				continue
			}
			pts, _, err := timeseries.AlignPair(history.Get(pr[0]), history.Get(pr[1]))
			if err != nil || len(pts) == 0 {
				// No overlap: skip this link.
				continue
			}
			model, err := core.Train(pts, cfg.Model)
			if err != nil {
				results[i] = result{err: fmt.Errorf("train %s ~ %s: %w", pr[0], pr[1], err)}
				continue
			}
			results[i] = result{model: model}
		}
	})
	for i, r := range results {
		switch {
		case r.err != nil:
			m.Close()
			return nil, r.err
		case r.model != nil:
			m.models[MakePair(pairs[i][0], pairs[i][1])] = r.model
		}
	}
	if len(m.models) == 0 && keep == nil {
		m.Close()
		return nil, fmt.Errorf("manager: no trainable pairs: %w", core.ErrNoData)
	}
	m.initRuntime()
	return m, nil
}

// FromModels builds a manager around an already-trained model set without
// retraining — the resharding primitive: live models (pointers, with all
// their adaptive state) are moved between shard managers by constructing
// new managers over re-partitioned subsets of one model fleet. The models
// map is copied; the *core.Model values are shared.
func FromModels(ids []timeseries.MeasurementID, models map[Pair]*core.Model, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if len(ids) < 2 {
		return nil, fmt.Errorf("manager needs at least 2 measurements, got %d", len(ids))
	}
	m := &Manager{
		cfg:    cfg,
		ids:    append([]timeseries.MeasurementID(nil), ids...),
		models: make(map[Pair]*core.Model, len(models)),
	}
	for p, model := range models {
		m.models[p] = model
	}
	m.initRuntime()
	return m, nil
}

// IDs returns the measurements the manager watches.
func (m *Manager) IDs() []timeseries.MeasurementID {
	return append([]timeseries.MeasurementID(nil), m.ids...)
}

// Pairs returns the trained links in stable order.
func (m *Manager) Pairs() []Pair {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Pair(nil), m.pairs...)
}

// PairCount returns the number of trained links without copying the pair
// slice — the per-row fast path for callers that only size buffers.
func (m *Manager) PairCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pairs)
}

// Model returns the trained model for a pair (nil when absent).
func (m *Manager) Model(a, b timeseries.MeasurementID) *core.Model {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.models[MakePair(a, b)]
}

// Models returns the trained model set keyed by pair. The map is a copy;
// the model pointers are the live models (used by resharding to move
// fleets between shard managers without losing adaptive state).
func (m *Manager) Models() map[Pair]*core.Model {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Pair]*core.Model, len(m.models))
	for p, model := range m.models {
		out[p] = model
	}
	return out
}

// Config returns the manager's effective (defaulted) configuration — what
// discovery needs to train a model for a newly admitted pair with the
// exact settings of the existing fleet.
func (m *Manager) Config() Config { return m.cfg }

// AddModel grafts an already-trained model into the live pair graph
// without touching any neighbor: the step-path state is rebuilt all-dirty
// (the same invariant reshard and recovery rely on), so surviving pairs'
// trajectories are unchanged bit for bit. Replacing an existing pair's
// model is allowed. This is the discovery tier's admission primitive.
func (m *Manager) AddModel(p Pair, model *core.Model) error {
	if model == nil {
		return fmt.Errorf("manager: add %s: nil model", p)
	}
	p = MakePair(p.A, p.B)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.models[p] = model
	m.initRuntime()
	return nil
}

// RemovePair drops a pair's model from the live graph, freeing the model
// memory and its slice slots on the next runtime rebuild. Reports whether
// the pair was present. This is the discovery tier's eviction primitive.
func (m *Manager) RemovePair(p Pair) bool {
	p = MakePair(p.A, p.B)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.models[p]; !ok {
		return false
	}
	delete(m.models, p)
	m.initRuntime()
	return true
}

// Aggregator exposes the manager's aggregation layer (running means,
// localization, alarm thresholds). Shard managers built with NewSubset
// never feed theirs; the sharded coordinator owns a separate one.
func (m *Manager) Aggregator() *Aggregator { return m.agg }

// Step scores one synchronized row across every link, updates the running
// accumulators, and publishes alarms. The fan-out runs on the persistent
// worker pool over the cached sorted pair slice — identical chunking every
// step — and the aggregation scratch is reused, so a step allocates
// nothing beyond the returned report's maps. The phases (score →
// aggregate → alarm) are traced via obs.StartSpan and the step latency,
// gap/growth counts and fitness distributions land on the ops surface.
func (m *Manager) Step(row Row) StepReport {
	stepStart := time.Now()
	sp := obs.StartSpan("manager.step")
	m.mu.Lock()
	defer m.mu.Unlock()

	// Fan the links out over the persistent pool. The happens-before edges
	// of the task channel and the wait group order the curRow/outcomes
	// accesses between this goroutine and the workers.
	sp.Phase("score")
	m.curRow = row
	m.prefetchRow(row)
	atomic.StoreUint64(&m.stepSkipped, 0)
	m.pool.run(len(m.pairs), m.cfg.Workers, m.rangeFn)
	m.curRow = Row{}
	m.noteDirty(int(atomic.LoadUint64(&m.stepSkipped)))
	obsDirtyPairs.Set(float64(m.lastDirty))

	// Aggregate Q^{a,b} → Q^a → Q and publish alarms through the shared
	// Aggregator — the exact code the sharded coordinator runs, which is
	// what keeps the two modes bit-identical.
	sp.Phase("aggregate")
	report := m.agg.Aggregate(row.Time, m.pairs, m.pairIdx, m.outcomes, sp)
	sp.End()
	obsStepSeconds.Observe(time.Since(stepStart).Seconds())
	return report
}

// ScoreInto scores every trained pair against row on the manager's own
// worker pool, writing local pair i's outcome into dst[globalIdx[i]]
// (dst[i] when globalIdx is nil). It advances model state exactly like
// Step but performs no aggregation, accumulator updates or alarms — the
// sharded coordinator scatters several managers' outcomes into one global
// slice this way and aggregates them centrally. Distinct managers may
// ScoreInto the same dst concurrently as long as their index sets are
// disjoint.
func (m *Manager) ScoreInto(row Row, globalIdx []int, dst []Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.curRow = row
	m.curDst = dst
	m.curIdx = globalIdx
	m.prefetchRow(row)
	atomic.StoreUint64(&m.stepSkipped, 0)
	m.pool.run(len(m.pairs), m.cfg.Workers, m.scatterFn)
	m.curRow, m.curDst, m.curIdx = Row{}, nil, nil
	// The dirty-pair gauge is left to the coordinator, which sums
	// LastDirtyPairs across shards after the fan-out; per-shard Set calls
	// would race each other to a meaningless value.
	m.noteDirty(int(atomic.LoadUint64(&m.stepSkipped)))
}

// prefetchRow loads the row's values into the index-addressed buffers the
// scoring hot loop reads (two slice loads per pair instead of two map
// hashes). Callers hold m.mu; the worker pool's happens-before edges
// publish the buffers to the chunk workers.
func (m *Manager) prefetchRow(row Row) {
	for i, id := range m.ids {
		v, ok := row.Values[id]
		m.valBuf[i] = v
		m.okBuf[i] = ok
	}
}

// noteDirty records the last row's dirty/skipped split and feeds the
// cumulative skip counter. Callers hold m.mu.
func (m *Manager) noteDirty(skipped int) {
	m.lastDirty = len(m.pairs) - skipped
	if skipped > 0 {
		obsSkippedPairs.Add(uint64(skipped))
	}
}

// LastDirtyPairs returns how many pairs actually re-scored on the most
// recent row (the rest carried their cached outcome forward).
func (m *Manager) LastDirtyPairs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastDirty
}

// scoreRange scores pairs [lo, hi) of the current row into the outcome
// buffer; it is the unit of work executed by pool workers (and by Step
// itself for the first chunk).
func (m *Manager) scoreRange(lo, hi int) {
	row := m.curRow
	skipped := uint64(0)
	for i := lo; i < hi; i++ {
		m.outcomes[i] = m.stepPairAt(i, row, &skipped)
	}
	if skipped > 0 {
		atomic.AddUint64(&m.stepSkipped, skipped)
	}
}

// scatterRange is scoreRange for ScoreInto: outcomes land in the caller's
// buffer at translated global indices (and, like every scored row, in the
// local carry-forward cache).
func (m *Manager) scatterRange(lo, hi int) {
	row, dst, idx := m.curRow, m.curDst, m.curIdx
	skipped := uint64(0)
	for i := lo; i < hi; i++ {
		out := m.stepPairAt(i, row, &skipped)
		m.outcomes[i] = out
		if idx == nil {
			dst[i] = out
		} else {
			dst[idx[i]] = out
		}
	}
	if skipped > 0 {
		atomic.AddUint64(&m.stepSkipped, skipped)
	}
}

// stepPairAt scores link i for the row — or skips it. A missing or
// non-finite value on either side is a monitoring gap: the link's chain
// resets unscored. The skip test is the incremental scheduler's core: a
// steady pair whose two values stayed inside the cached cell bounds
// provably repeats the cached outcome bit-for-bit (the half-open
// comparisons replicate core Axis.Locate, so NaN and boundary crossings
// always fall through to a real re-score), and the model only needs to be
// told the run continued. NoteSkipped returning false means the model was
// reset or mutated behind the cache (e.g. SetAdaptive); the pair then
// re-scores late-dirty, which is always safe.
func (m *Manager) stepPairAt(i int, row Row, skipped *uint64) Outcome {
	p := m.pairs[i]
	model := m.modelAt[i]
	var va, vb float64
	var oka, okb bool
	if idx := m.pairIdx[i]; idx[0] >= 0 && idx[1] >= 0 {
		va, oka = m.valBuf[idx[0]], m.okBuf[idx[0]]
		vb, okb = m.valBuf[idx[1]], m.okBuf[idx[1]]
	} else {
		// An endpoint outside the manager's measurement universe (possible
		// after FromModels with a narrower id set) falls back to the map.
		va, oka = row.Values[p.A]
		vb, okb = row.Values[p.B]
	}
	if m.steadyOK[i] && !m.cfg.FullRescore && oka && okb {
		b := m.steadyB[4*i : 4*i+4 : 4*i+4]
		if va >= b[0] && va < b[1] && vb >= b[2] && vb < b[3] && model.NoteSkipped() {
			*skipped++
			return m.outcomes[i]
		}
	}
	if !oka || !okb || math.IsNaN(va) || math.IsNaN(vb) {
		model.Reset()
		m.steadyOK[i] = false
		return Outcome{Gap: true}
	}
	res := model.Step(mathx.Point2{X: va, Y: vb})
	if res.Steady {
		if !m.steadyOK[i] {
			// The pair just entered a steady run: cache its cell bounds. A
			// pair that was already steady and re-scored dirty (FullRescore
			// or a late-dirty fallback) kept the same cell — a cell change
			// breaks the run and reports Steady=false — so its cached
			// bounds remain valid.
			if xlo, xhi, ylo, yhi, ok := model.SteadyBounds(); ok {
				b := m.steadyB[4*i : 4*i+4 : 4*i+4]
				b[0], b[1], b[2], b[3] = xlo, xhi, ylo, yhi
				m.steadyOK[i] = true
			}
		}
	} else {
		m.steadyOK[i] = false
	}
	return Outcome{Fitness: res.Fitness, Prob: res.Prob, Scored: res.Scored, Grown: res.Grown, Steady: res.Steady}
}

// PairState is one link's live scheduler state, the unit of the ops
// topology view: the pair, which shard owns it, whether the incremental
// scheduler holds it steady (cached outcome carried forward), and its
// last outcome.
type PairState struct {
	Pair Pair
	// Shard is the owning shard's index — always 0 for an unsharded
	// Manager; the sharded coordinator rewrites it when merging.
	Shard int
	// Steady reports whether the pair sits in a frozen self-transition
	// run with valid cached cell bounds (skip-eligible).
	Steady bool
	// Scored reports whether the last row produced a score for this
	// link (false right after a gap or before the first row).
	Scored bool
	// Fitness is the link's last Q^{a,b} (0 until the first scored row).
	Fitness float64
}

// PairStates returns every link's live scheduler state in the manager's
// canonical pair order.
func (m *Manager) PairStates() []PairState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PairState, len(m.pairs))
	for i, p := range m.pairs {
		o := m.outcomes[i]
		out[i] = PairState{Pair: p, Steady: m.steadyOK[i], Scored: o.Scored, Fitness: o.Fitness}
	}
	return out
}

// Run replays a dataset through Step row by row over [from, to) and
// returns the per-step reports. The dataset's series must share the
// sampling grid.
func (m *Manager) Run(ds *timeseries.Dataset, from, to time.Time) ([]StepReport, error) {
	rows, err := BuildRows(ds, from, to)
	if err != nil {
		return nil, err
	}
	reports := make([]StepReport, 0, len(rows))
	for _, row := range rows {
		reports = append(reports, m.Step(row))
	}
	return reports, nil
}

// BuildRows materializes the synchronized rows of a dataset over
// [from, to) at the dataset's sampling step — the replay input shared by
// Manager.Run and the sharded coordinator's Run.
func BuildRows(ds *timeseries.Dataset, from, to time.Time) ([]Row, error) {
	ids := ds.IDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("manager run: empty dataset")
	}
	step := ds.Get(ids[0]).Step
	var rows []Row
	for t := from; t.Before(to); t = t.Add(step) {
		row := Row{Time: t, Values: make(map[timeseries.MeasurementID]float64, len(ids))}
		for _, id := range ids {
			s := ds.Get(id)
			if i, ok := s.IndexOf(t); ok {
				row.Values[id] = s.Values[i]
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MeasurementMeans returns the running mean Q^a per measurement since the
// last ResetAccumulators.
func (m *Manager) MeasurementMeans() map[timeseries.MeasurementID]float64 {
	return m.agg.MeasurementMeans()
}

// SystemMean returns the running mean system fitness Q.
func (m *Manager) SystemMean() float64 { return m.agg.SystemMean() }

// Steps returns how many rows produced a system score.
func (m *Manager) Steps() int { return m.agg.Steps() }

// ResetAccumulators clears the running means (e.g. between experiment
// phases) without touching the models.
func (m *Manager) ResetAccumulators() { m.agg.Reset() }

// PairScore is one link's accumulated mean fitness.
type PairScore struct {
	Pair  Pair
	Score float64
	// Samples is how many scored transitions contributed.
	Samples int
}

// WorstPairs returns the k links with the lowest mean fitness since the
// last ResetAccumulators — the paper's Q^{a,b} drill-down ("all the links
// leading to a measurement have problems ⇒ that measurement is the
// source"). It requires Config.TrackPairMeans; otherwise it returns nil.
func (m *Manager) WorstPairs(k int) []PairScore { return m.agg.WorstPairs(k) }

// PairMeans returns the accumulated mean fitness per link since the last
// ResetAccumulators (nil unless Config.TrackPairMeans).
func (m *Manager) PairMeans() map[Pair]float64 { return m.agg.PairMeans() }

// WorstPairDrops ranks links by how far their current mean fitness fell
// below a baseline captured earlier with PairMeans (see
// Aggregator.WorstPairDrops).
func (m *Manager) WorstPairDrops(baseline map[Pair]float64, k int) []PairScore {
	return m.agg.WorstPairDrops(baseline, k)
}

// MachineScore is one machine's average fitness (the paper's Figure 14).
type MachineScore struct {
	Machine string
	Score   float64
	// Measurements is how many measurements contributed.
	Measurements int
}

// Localization is the problem-localization report: machines ranked by
// average fitness, worst first.
type Localization struct {
	Machines []MachineScore
}

// Suspect returns the machine with the lowest score (the localization
// answer), or "" when no scores exist.
func (l Localization) Suspect() string {
	if len(l.Machines) == 0 {
		return ""
	}
	return l.Machines[0].Machine
}

// Localize rolls the accumulated per-measurement means up to machines and
// ranks them worst-first (the paper's drill-down from Q to the problem
// source).
func (m *Manager) Localize() Localization { return m.agg.Localize() }

// SetAdaptive flips online updating on every model (offline vs adaptive
// comparison runs).
func (m *Manager) SetAdaptive(adaptive bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, model := range m.models {
		model.SetAdaptive(adaptive)
	}
}

// ResetChains clears every model's Markov position (e.g. when switching
// between disjoint data windows).
func (m *Manager) ResetChains() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, model := range m.models {
		model.Reset()
	}
}
