package manager

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mcorr/internal/timeseries"
)

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint")

	mgr, ds, _ := trainedManager(t, Config{}, 2)
	defer mgr.Close()
	trainEnd := timeseries.MonitoringStart.AddDate(0, 0, 1)
	if _, err := mgr.Run(ds.Slice(trainEnd, trainEnd.Add(2*time.Hour)), trainEnd, trainEnd.Add(2*time.Hour)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := mgr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cursor := time.Date(2008, time.June, 1, 12, 0, 0, 0, time.UTC)
	ck := &Checkpoint{
		Cursor:  cursor,
		WALSeq:  42,
		Steps:   mgr.Steps(),
		Manager: buf.Bytes(),
		Store:   []byte("store-blob"),
	}
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatalf("WriteCheckpointFile: %v", err)
	}

	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("ReadCheckpointFile: %v", err)
	}
	if got.Version != CheckpointVersion || got.WALSeq != 42 || !got.Cursor.Equal(cursor) {
		t.Fatalf("checkpoint = %+v", got)
	}
	if string(got.Store) != "store-blob" {
		t.Fatalf("store blob = %q", got.Store)
	}
	restored, err := LoadManager(bytes.NewReader(got.Manager), nil)
	if err != nil {
		t.Fatalf("LoadManager from checkpoint: %v", err)
	}
	defer restored.Close()
	if restored.Steps() != mgr.Steps() {
		t.Fatalf("restored steps = %d, want %d", restored.Steps(), mgr.Steps())
	}
	a, b := mgr.SystemMean(), restored.SystemMean()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("restored system mean %v != %v", b, a)
	}
}

func TestReadCheckpointFileMissing(t *testing.T) {
	_, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing file = %v, want ErrNoCheckpoint", err)
	}
}

func TestReadCheckpointFileVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Checkpoint{Version: CheckpointVersion + 99}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err == nil {
		t.Fatal("future version: want error")
	}
}

func TestWriteCheckpointFileIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint")
	if err := WriteCheckpointFile(path, &Checkpoint{WALSeq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpointFile(path, &Checkpoint{WALSeq: 2}); err != nil {
		t.Fatal(err)
	}
	// No temp litter survives a successful write.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory has %v, want just the checkpoint", names)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil || got.WALSeq != 2 {
		t.Fatalf("read = %+v, %v; want WALSeq 2", got, err)
	}
}

func TestReadCheckpointFileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint")
	if err := os.WriteFile(path, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("corrupt file = %v, want a hard decode error", err)
	}
}

func TestCadence(t *testing.T) {
	base := time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC)

	t.Run("steps", func(t *testing.T) {
		c := Cadence{EverySteps: 10}
		if c.Due(9, base) {
			t.Error("due before 10 steps")
		}
		if !c.Due(10, base) {
			t.Error("not due at 10 steps")
		}
		c.Mark(10, base)
		if c.Due(19, base) {
			t.Error("due again before another 10 steps")
		}
		if !c.Due(20, base) {
			t.Error("not due at 20 steps")
		}
	})

	t.Run("interval", func(t *testing.T) {
		c := Cadence{Interval: time.Minute}
		if c.Due(0, base) {
			t.Error("first call must anchor, not fire")
		}
		if c.Due(0, base.Add(30*time.Second)) {
			t.Error("due before the interval elapsed")
		}
		if !c.Due(0, base.Add(61*time.Second)) {
			t.Error("not due after the interval")
		}
		c.Mark(0, base.Add(61*time.Second))
		if c.Due(0, base.Add(90*time.Second)) {
			t.Error("due again too soon after Mark")
		}
	})

	t.Run("zero value never fires", func(t *testing.T) {
		var c Cadence
		if c.Due(1<<30, base.Add(1000*time.Hour)) {
			t.Error("zero cadence fired")
		}
	})
}
