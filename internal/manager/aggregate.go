package manager

import (
	"math"
	"sort"
	"sync"
	"time"

	"mcorr/internal/alarm"
	"mcorr/internal/mathx"
	"mcorr/internal/obs"
	"mcorr/internal/timeseries"
)

// Outcome is one link's scoring result for a single row. It is the unit
// the scoring fabric hands to the Aggregator: the sharded coordinator
// scatters per-shard Outcomes into one global slice (in canonical pair
// order) and aggregates them with exactly the same code path as the
// single-manager Step, which is what makes the two modes bit-identical.
type Outcome struct {
	// Fitness is the paper's rank-based score Q^{a,b} ∈ [0, 1].
	Fitness float64
	// Prob is the observed transition probability (the paper's δ check).
	Prob float64
	// Scored is false when the link produced no score (warm-up or gap).
	Scored bool
	// Gap marks a link reset by a missing or non-finite value.
	Gap bool
	// Grown marks an adaptive grid growth during this step.
	Grown bool
	// Steady marks an outcome the incremental scheduler may carry forward:
	// the link's model froze a self-transition run, so identical-cell
	// observations repeat this outcome bit-for-bit (see core.StepResult).
	Steady bool
}

// Aggregator folds per-pair Outcomes into the paper's three fitness
// levels — pair Q^{a,b}, measurement Q^a, system Q — maintains the
// running means behind localization, and raises threshold alarms. It is
// the single aggregation implementation shared by Manager.Step and the
// sharded coordinator: both feed it the same outcomes in the same
// canonical pair order, so per-measurement sums accumulate in an
// identical float addition order and the resulting trajectories match to
// the last bit.
//
// An Aggregator is safe for concurrent use; Aggregate calls themselves
// must be serialized by the caller (the Manager's or coordinator's step
// lock does this), because they share the reused scratch buffers.
type Aggregator struct {
	mu  sync.Mutex
	cfg Config
	ids []timeseries.MeasurementID

	acc     map[timeseries.MeasurementID]*mathx.Online // running Q^a means
	pairAcc map[Pair]*mathx.Online                     // running Q^{a,b} means
	sysAcc  mathx.Online
	steps   int

	sumBuf   []float64     // per-measurement fitness sums, reused
	cntBuf   []int         // per-measurement scored-link counts, reused
	alarmBuf []alarm.Alarm // alarms gathered during aggregation, reused
}

// NewAggregator builds an aggregator over the measurement universe ids.
// cfg supplies the thresholds, the alarm sink and the KeepPairScores /
// TrackPairMeans reporting flags; its model and worker settings are
// ignored here.
func NewAggregator(ids []timeseries.MeasurementID, cfg Config) *Aggregator {
	cfg = cfg.withDefaults()
	return &Aggregator{
		cfg:    cfg,
		ids:    append([]timeseries.MeasurementID(nil), ids...),
		acc:    make(map[timeseries.MeasurementID]*mathx.Online),
		sumBuf: make([]float64, len(ids)),
		cntBuf: make([]int, len(ids)),
	}
}

// Aggregate folds one row's outcomes into a StepReport and publishes any
// threshold alarms in pair → measurement → system order. pairs, pairIdx
// and outcomes must be parallel slices in canonical (sorted) pair order;
// pairIdx[i] holds the indices of pairs[i]'s endpoints in the ids slice
// passed to NewAggregator (−1 when absent). sp, when non-nil, receives
// the "alarm" phase mark before alarms are published.
func (g *Aggregator) Aggregate(t time.Time, pairs []Pair, pairIdx [][2]int, outcomes []Outcome, sp *obs.Span) StepReport {
	g.mu.Lock()
	defer g.mu.Unlock()
	report := StepReport{
		Time:         t,
		System:       math.NaN(),
		Measurements: make(map[timeseries.MeasurementID]float64),
	}
	if g.cfg.KeepPairScores {
		report.Pairs = make(map[Pair]float64, len(pairs))
	}
	g.alarmBuf = g.alarmBuf[:0]
	var gaps, growths uint64
	for i := range g.sumBuf {
		g.sumBuf[i] = 0
		g.cntBuf[i] = 0
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.Gap {
			gaps++
		}
		if o.Grown {
			growths++
		}
		if !o.Scored {
			continue
		}
		p := pairs[i]
		report.ScoredPairs++
		obsFitnessPair.Observe(o.Fitness)
		if report.Pairs != nil {
			report.Pairs[p] = o.Fitness
		}
		if g.cfg.TrackPairMeans {
			if g.pairAcc == nil {
				g.pairAcc = make(map[Pair]*mathx.Online, len(pairs))
			}
			if g.pairAcc[p] == nil {
				g.pairAcc[p] = &mathx.Online{}
			}
			g.pairAcc[p].Add(o.Fitness)
		}
		if ab := pairIdx[i]; ab[0] >= 0 && ab[1] >= 0 {
			g.sumBuf[ab[0]] += o.Fitness
			g.cntBuf[ab[0]]++
			g.sumBuf[ab[1]] += o.Fitness
			g.cntBuf[ab[1]]++
		}
		if g.cfg.ProbDelta > 0 && o.Prob < g.cfg.ProbDelta {
			g.alarmBuf = append(g.alarmBuf, alarm.Alarm{
				Time: t, Severity: alarm.SeverityWarning, Scope: alarm.ScopePair,
				Measurement: p.A, Peer: p.B,
				Score: o.Prob, Threshold: g.cfg.ProbDelta,
				Message: "transition probability below delta",
			})
		}
	}
	var sysSum float64
	var sysN int
	for k, c := range g.cntBuf {
		if c == 0 {
			continue
		}
		id := g.ids[k]
		q := g.sumBuf[k] / float64(c)
		report.Measurements[id] = q
		obsFitnessMeas.Observe(q)
		if g.acc[id] == nil {
			g.acc[id] = &mathx.Online{}
		}
		g.acc[id].Add(q)
		sysSum += q
		sysN++
		if g.cfg.MeasurementThreshold > 0 && q < g.cfg.MeasurementThreshold {
			g.alarmBuf = append(g.alarmBuf, alarm.Alarm{
				Time: t, Severity: alarm.SeverityWarning, Scope: alarm.ScopeMeasurement,
				Measurement: id, Score: q, Threshold: g.cfg.MeasurementThreshold,
				Message: "measurement fitness below threshold",
			})
		}
	}
	if sysN > 0 {
		report.System = sysSum / float64(sysN)
		obsFitnessSys.Observe(report.System)
		g.sysAcc.Add(report.System)
		g.steps++
		if g.cfg.SystemThreshold > 0 && report.System < g.cfg.SystemThreshold {
			g.alarmBuf = append(g.alarmBuf, alarm.Alarm{
				Time: t, Severity: alarm.SeverityCritical, Scope: alarm.ScopeSystem,
				Score: report.System, Threshold: g.cfg.SystemThreshold,
				Message: "system fitness below threshold",
			})
		}
	}
	if sp != nil {
		sp.Phase("alarm")
	}
	for i := range g.alarmBuf {
		if g.cfg.Sink != nil {
			g.cfg.Sink.Publish(g.alarmBuf[i])
		}
	}
	obsRows.Inc()
	if report.ScoredPairs > 0 {
		obsPairsScored.Add(uint64(report.ScoredPairs))
	}
	if gaps > 0 {
		obsGaps.Add(gaps)
	}
	if growths > 0 {
		obsGrowths.Add(growths)
	}
	report.GrownPairs = int(growths)
	return report
}

// IDs returns the measurement universe the aggregator was built over.
func (g *Aggregator) IDs() []timeseries.MeasurementID {
	return append([]timeseries.MeasurementID(nil), g.ids...)
}

// MeasurementMeans returns the running mean Q^a per measurement since the
// last Reset.
func (g *Aggregator) MeasurementMeans() map[timeseries.MeasurementID]float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[timeseries.MeasurementID]float64, len(g.acc))
	for id, o := range g.acc {
		out[id] = o.Mean()
	}
	return out
}

// SystemMean returns the running mean system fitness Q.
func (g *Aggregator) SystemMean() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sysAcc.Mean()
}

// Steps returns how many aggregated rows produced a system score.
func (g *Aggregator) Steps() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.steps
}

// Reset clears the running means without touching any model state.
func (g *Aggregator) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.acc = make(map[timeseries.MeasurementID]*mathx.Online)
	g.pairAcc = nil
	g.sysAcc = mathx.Online{}
	g.steps = 0
}

// PairMeans returns the accumulated mean fitness per link since the last
// Reset (nil unless Config.TrackPairMeans).
func (g *Aggregator) PairMeans() map[Pair]float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pairAcc == nil {
		return nil
	}
	out := make(map[Pair]float64, len(g.pairAcc))
	for p, o := range g.pairAcc {
		out[p] = o.Mean()
	}
	return out
}

// WorstPairs returns the k links with the lowest mean fitness since the
// last Reset — the paper's Q^{a,b} drill-down. Requires
// Config.TrackPairMeans; otherwise nil.
func (g *Aggregator) WorstPairs(k int) []PairScore {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pairAcc == nil {
		return nil
	}
	out := make([]PairScore, 0, len(g.pairAcc))
	for p, o := range g.pairAcc {
		out = append(out, PairScore{Pair: p, Score: o.Mean(), Samples: o.N()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A.Less(out[j].Pair.A)
		}
		return out[i].Pair.B.Less(out[j].Pair.B)
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// WorstPairDrops ranks links by how far their current mean fitness fell
// below a baseline captured earlier with PairMeans — links differ in
// intrinsic predictability, so a drop against the link's own normal level
// localizes better than the absolute score. PairScore.Score holds the
// drop (baseline − current), descending. Links absent from the baseline
// are skipped.
func (g *Aggregator) WorstPairDrops(baseline map[Pair]float64, k int) []PairScore {
	current := g.PairMeans()
	if current == nil || baseline == nil {
		return nil
	}
	out := make([]PairScore, 0, len(current))
	g.mu.Lock()
	for p, cur := range current {
		base, ok := baseline[p]
		if !ok {
			continue
		}
		n := 0
		if acc := g.pairAcc[p]; acc != nil {
			n = acc.N()
		}
		out = append(out, PairScore{Pair: p, Score: base - cur, Samples: n})
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A.Less(out[j].Pair.A)
		}
		return out[i].Pair.B.Less(out[j].Pair.B)
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Localize rolls the accumulated per-measurement means up to machines and
// ranks them worst-first (the paper's drill-down from Q to the problem
// source).
func (g *Aggregator) Localize() Localization {
	means := g.MeasurementMeans()
	sums := make(map[string]float64)
	counts := make(map[string]int)
	// Fold in the stable measurement order: iterating the means map would
	// vary the float addition order call to call, making machine scores
	// differ in the last ulp between otherwise identical runs.
	for _, id := range g.ids {
		q, ok := means[id]
		if !ok || math.IsNaN(q) {
			continue
		}
		sums[id.Machine] += q
		counts[id.Machine]++
	}
	var out Localization
	for machine, s := range sums {
		out.Machines = append(out.Machines, MachineScore{
			Machine: machine, Score: s / float64(counts[machine]), Measurements: counts[machine],
		})
	}
	sort.Slice(out.Machines, func(i, j int) bool {
		if out.Machines[i].Score != out.Machines[j].Score {
			return out.Machines[i].Score < out.Machines[j].Score
		}
		return out.Machines[i].Machine < out.Machines[j].Machine
	})
	return out
}

// state extracts the persistable accumulator state (see persist.go).
func (g *Aggregator) state() (entries []accEntry, sys [3]float64, steps int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, mean, m2 := g.sysAcc.State()
	sys = [3]float64{float64(n), mean, m2}
	for id, acc := range g.acc {
		an, amean, am2 := acc.State()
		entries = append(entries, accEntry{ID: id, State: [3]float64{float64(an), amean, am2}})
	}
	return entries, sys, g.steps
}

// restore installs persisted accumulator state (see persist.go).
func (g *Aggregator) restore(entries []accEntry, sys [3]float64, steps int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.acc = restoreAccumulators(entries)
	g.sysAcc.Restore(int(sys[0]), sys[1], sys[2])
	g.steps = steps
}
