package manager

import (
	"math"
	"sync"
	"testing"

	"time"

	"mcorr/internal/core"
	"mcorr/internal/timeseries"
)

// TestManagerConcurrentStepAndReads hammers Step together with every
// read-side accessor from separate goroutines. Under -race (make check)
// this exercises the persistent worker pool, the reused outcome buffers
// and the accumulator maps for unsynchronized access.
func TestManagerConcurrentStepAndReads(t *testing.T) {
	mgr, ds, _ := trainedManager(t, Config{
		Model:          core.Config{Adaptive: true},
		TrackPairMeans: true,
		KeepPairScores: true,
	}, 2)
	defer mgr.Close()

	from := timeseries.MonitoringStart.AddDate(0, 0, 1)
	const steps = 48
	rows := make([]Row, steps)
	for i := range rows {
		at := from.Add(time.Duration(i) * timeseries.SampleStep)
		rows[i] = Row{Time: at, Values: rowValues(ds, at)}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, row := range rows {
			rep := mgr.Step(row)
			if rep.ScoredPairs > 0 && (rep.System < 0 || rep.System > 1) {
				t.Errorf("system score %g out of range", rep.System)
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				_ = mgr.MeasurementMeans()
				_ = mgr.SystemMean()
				_ = mgr.Steps()
				_ = mgr.Pairs()
				_ = mgr.PairMeans()
				_ = mgr.WorstPairs(3)
				_ = mgr.Localize()
			}
		}()
	}
	wg.Wait()

	// Steps counts only rows that produced a system score; gaps in the
	// generated trace may drop a few.
	if got := mgr.Steps(); got == 0 || got > steps {
		t.Errorf("steps %d, want 1..%d", got, steps)
	}
}

// TestManagerStepDeterministic: with the cached sorted pair slice and
// index-based aggregation, two managers trained identically must produce
// identical reports — including the floating-point accumulation order of
// the system score — run to run.
func TestManagerStepDeterministic(t *testing.T) {
	build := func() (*Manager, *timeseries.Dataset) {
		mgr, ds, _ := trainedManager(t, Config{Model: core.Config{Adaptive: true}, KeepPairScores: true}, 2)
		return mgr, ds
	}
	a, ds := build()
	defer a.Close()
	b, _ := build()
	defer b.Close()

	pa, pb := a.Pairs(), b.Pairs()
	if len(pa) != len(pb) {
		t.Fatalf("pair counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("pair order differs at %d: %v vs %v", i, pa[i], pb[i])
		}
	}

	from := timeseries.MonitoringStart.AddDate(0, 0, 1)
	for i := 0; i < 32; i++ {
		at := from.Add(time.Duration(i) * timeseries.SampleStep)
		row := Row{Time: at, Values: rowValues(ds, at)}
		ra, rb := a.Step(row), b.Step(row)
		if ra.ScoredPairs != rb.ScoredPairs {
			t.Fatalf("step %d: scored pairs %d vs %d", i, ra.ScoredPairs, rb.ScoredPairs)
		}
		if !(math.IsNaN(ra.System) && math.IsNaN(rb.System)) && ra.System != rb.System {
			t.Fatalf("step %d: system %v vs %v (not bit-identical)", i, ra.System, rb.System)
		}
		for id, q := range ra.Measurements {
			if rb.Measurements[id] != q {
				t.Fatalf("step %d: measurement %s differs", i, id)
			}
		}
		for p, q := range ra.Pairs {
			if rb.Pairs[p] != q {
				t.Fatalf("step %d: pair %s differs", i, p)
			}
		}
	}
	if a.SystemMean() != b.SystemMean() {
		t.Errorf("running system means diverged: %v vs %v", a.SystemMean(), b.SystemMean())
	}
}

// TestManagerCloseIdempotent: Close twice is safe, and a closed manager's
// read-side accessors still work.
func TestManagerCloseIdempotent(t *testing.T) {
	mgr, _, _ := trainedManager(t, Config{}, 2)
	mgr.Close()
	mgr.Close()
	if len(mgr.Pairs()) == 0 {
		t.Error("pairs lost after close")
	}
	_ = mgr.SystemMean()
}
