package manager

import "mcorr/internal/obs"

// Process-global manager metrics (mcorr_manager_*). Counters and histogram
// observations on the Step path are single atomic ops; the labeled fitness
// children are resolved once here so the hot loop never touches the vec.
var (
	obsStepSeconds = obs.Default().Histogram("mcorr_manager_step_seconds",
		"Latency of Manager.Step: scoring one synchronized row across every link.",
		obs.TimeBuckets())
	obsTrainSeconds = obs.Default().Histogram("mcorr_manager_train_seconds",
		"Latency of training the full model fleet (Manager.New).",
		obs.ExpBuckets(1e-3, 4, 10))
	obsRows = obs.Default().Counter("mcorr_manager_rows_total",
		"Synchronized rows fed through Manager.Step.")
	obsPairsScored = obs.Default().Counter("mcorr_manager_pairs_scored_total",
		"Link scores Q^{a,b} produced across all steps.")
	obsGaps = obs.Default().Counter("mcorr_manager_gaps_total",
		"Link resets caused by missing or non-finite values (monitoring gaps).")
	obsGrowths = obs.Default().Counter("mcorr_manager_model_grow_total",
		"Adaptive grid growth events across the model fleet.")
	obsPoolQueueDepth = obs.Default().Gauge("mcorr_manager_pool_queue_depth",
		"Scoring chunks left queued to the worker pool at the last dispatch.")
	obsCheckpointSeconds = obs.Default().Histogram("mcorr_checkpoint_seconds",
		"Latency of writing one durable checkpoint (snapshot encode + fsync + rename).",
		obs.TimeBuckets())
	obsCheckpoints = obs.Default().Counter("mcorr_checkpoints_written_total",
		"Checkpoints durably written.")

	obsFitness = obs.Default().HistogramVec("mcorr_manager_fitness",
		"Fitness scores by aggregation level: pair (Q^{a,b}), measurement (Q^a), system (Q).",
		obs.FitnessBuckets(), "level")
	obsFitnessPair = obsFitness.With("pair")
	obsFitnessMeas = obsFitness.With("measurement")
	obsFitnessSys  = obsFitness.With("system")
)
