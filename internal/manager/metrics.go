package manager

import "mcorr/internal/obs"

// Process-global manager metrics (mcorr_manager_*). Counters and histogram
// observations on the Step path are single atomic ops; the labeled fitness
// children are resolved once here so the hot loop never touches the vec.
var (
	obsStepSeconds = obs.Default().Histogram("mcorr_manager_step_seconds",
		"Latency of Manager.Step: scoring one synchronized row across every link.",
		obs.TimeBuckets())
	obsTrainSeconds = obs.Default().Histogram("mcorr_manager_train_seconds",
		"Latency of training the full model fleet (Manager.New).",
		obs.ExpBuckets(1e-3, 4, 10))
	obsRows = obs.Default().Counter("mcorr_manager_rows_total",
		"Synchronized rows fed through Manager.Step.")
	obsPairsScored = obs.Default().Counter("mcorr_manager_pairs_scored_total",
		"Link scores Q^{a,b} produced across all steps.")
	obsGaps = obs.Default().Counter("mcorr_manager_gaps_total",
		"Link resets caused by missing or non-finite values (monitoring gaps).")
	obsGrowths = obs.Default().Counter("mcorr_manager_model_grow_total",
		"Adaptive grid growth events across the model fleet.")
	obsPoolQueueDepth = obs.Default().Gauge("mcorr_manager_pool_queue_depth",
		"Scoring chunks left queued to the worker pool at the last dispatch.")
	obsDirtyPairs = obs.Default().Gauge("mcorr_manager_dirty_pairs",
		"Pairs the incremental scheduler actually re-scored on the last row (the rest carried cached outcomes forward).")
	obsSkippedPairs = obs.Default().Counter("mcorr_manager_skipped_pairs_total",
		"Pair scorings skipped by the incremental scheduler because the cached steady outcome provably repeats.")
	obsCheckpointSeconds = obs.Default().Histogram("mcorr_checkpoint_seconds",
		"Latency of writing one durable checkpoint (snapshot encode + fsync + rename).",
		obs.TimeBuckets())
	obsCheckpoints = obs.Default().Counter("mcorr_checkpoints_written_total",
		"Checkpoints durably written.")
	obsCheckpointEpoch = obs.Default().Gauge("mcorr_checkpoint_epoch",
		"Epoch of the last durable checkpoint (versions the per-shard snapshot files; 0 before the first checkpoint).")

	obsFitness = obs.Default().HistogramVec("mcorr_manager_fitness",
		"Fitness scores by aggregation level: pair (Q^{a,b}), measurement (Q^a), system (Q).",
		obs.FitnessBuckets(), "level")
	obsFitnessPair = obsFitness.With("pair")
	obsFitnessMeas = obsFitness.With("measurement")
	obsFitnessSys  = obsFitness.With("system")
)

// RecordDirtyPairs publishes a fleet-wide dirty-pair count on the
// mcorr_manager_dirty_pairs gauge. Manager.Step records its own count;
// multi-manager fabrics (the sharded coordinator) sum LastDirtyPairs
// across their managers and publish the total here instead, so the gauge
// always reflects the whole fleet's last row.
func RecordDirtyPairs(n int) { obsDirtyPairs.Set(float64(n)) }

// RecordCheckpointEpoch publishes the epoch of the checkpoint that just
// committed on the mcorr_checkpoint_epoch gauge (the durable monitor
// calls this after the root checkpoint rename, and once at recovery with
// the restored epoch).
func RecordCheckpointEpoch(epoch uint64) { obsCheckpointEpoch.Set(float64(epoch)) }
