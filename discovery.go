package mcorr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"mcorr/internal/core"
	"mcorr/internal/diagnose"
	"mcorr/internal/discover"
	"mcorr/internal/manager"
	"mcorr/internal/shard"
)

// DiscoveryConfig tunes the correlation-discovery tier (see
// internal/discover): the streaming sketch shape, the probe cadence, and
// the admission/eviction policy over the bounded pair graph.
type DiscoveryConfig = discover.Config

// Discovery method constants (see discover.Method).
const (
	DiscoverPearson  = discover.Pearson
	DiscoverSpearman = discover.Spearman
)

// DiscoveryEvent records one discovery round that changed the pair graph.
type DiscoveryEvent struct {
	// Time is the timestamp of the row whose round boundary decided the
	// change.
	Time time.Time
	// Round is the 1-based discovery round.
	Round uint64
	// Admitted and Evicted are the pairs the round added and removed.
	Admitted []Pair
	Evicted  []Pair
	// Pairs is the graph size after applying the round.
	Pairs int
}

// WithPairBudget bounds the monitor's pair graph at n admitted pairs and
// turns on the discovery tier with default policy settings: the strongest
// n candidates are modeled (per-anchor top-K preferred), the rest are
// probed by streaming correlation sketches, and flat-lined models are
// evicted to make room. n <= 0 keeps the full l(l−1)/2 graph but still
// runs discovery (eviction only frees genuinely dead links).
func WithPairBudget(n int) MonitorOption {
	return func(o *monitorOptions) {
		if o.discovery == nil {
			o.discovery = &DiscoveryConfig{}
		}
		if n < 0 {
			n = 0
		}
		o.discovery.Budget = n
	}
}

// WithDiscovery turns on the discovery tier with full control over the
// sketch shape and admission/eviction policy. Compose with WithPairBudget
// in either order (the budget set last wins if both set one).
func WithDiscovery(cfg DiscoveryConfig) MonitorOption {
	return func(o *monitorOptions) {
		budget := 0
		if o.discovery != nil && cfg.Budget == 0 {
			budget = o.discovery.Budget
		}
		c := cfg
		if budget != 0 {
			c.Budget = budget
		}
		o.discovery = &c
	}
}

// ParsePairBudget parses a -pair-budget flag value for a fleet of l
// measurements: "" or "full" mean the full graph (budget 0), "25%" means
// a quarter of l(l−1)/2 (rounded up, at least 1), and a bare integer is
// an absolute pair count.
func ParsePairBudget(s string, l int) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "full") {
		return 0, nil
	}
	candidates := l * (l - 1) / 2
	if pct, ok := strings.CutSuffix(s, "%"); ok {
		f, err := strconv.ParseFloat(strings.TrimSpace(pct), 64)
		if err != nil || f <= 0 || f > 100 {
			return 0, fmt.Errorf("pair budget %q: want a percentage in (0, 100]", s)
		}
		n := int(math.Ceil(f / 100 * float64(candidates)))
		if n < 1 {
			n = 1
		}
		return n, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("pair budget %q: want \"full\", \"N%%\" or a non-negative pair count", s)
	}
	return n, nil
}

// DiscoveryFleet is the surface a discovery-bounded fleet adds on top of
// Fleet: the graph-change event stream and the budget/score views. The
// fleets built by NewDiscoveryFleet (and by a Monitor with WithPairBudget
// or WithDiscovery) satisfy it.
type DiscoveryFleet interface {
	Fleet
	// DrainDiscoveryEvents returns the graph changes applied since the
	// last drain, oldest first, and clears the buffer.
	DrainDiscoveryEvents() []DiscoveryEvent
	// AdmissionScores returns each admitted pair's last correlation
	// estimate.
	AdmissionScores() map[Pair]float64
	// BudgetInfo returns the admitted pair count, the budget (0 =
	// unlimited) and the candidate count l(l−1)/2.
	BudgetInfo() (admitted, budget, candidates int)
	// MarshalDiscoveryState serializes the discovery tier's mutable
	// state for a durable checkpoint.
	MarshalDiscoveryState() ([]byte, error)
}

// NewDiscoveryFleet trains a discovery-bounded scoring fleet: the
// discoverer bootstraps on the training history, only the admitted pairs
// get transition models (across shards when shards > 1), and every
// subsequent Step feeds the sketches and applies round-boundary graph
// changes. This is the batch-flow mirror of building a Monitor with
// WithPairBudget/WithDiscovery.
func NewDiscoveryFleet(history *Dataset, cfg ManagerConfig, dcfg DiscoveryConfig, shards int) (DiscoveryFleet, error) {
	return newDiscoveryFleet(history, cfg, dcfg, shards)
}

// discoveryFleet wraps a scoring fleet with the discovery tier: every
// scored row also feeds the correlation sketches, and round boundaries
// mutate the live pair graph (train+admit, evict) through the fleet's
// graph-mutation primitives. Steps and graph mutations happen on the
// caller's goroutine in row order, so trajectories and the graph itself
// are deterministic functions of the row stream.
type discoveryFleet struct {
	inner Fleet
	mgr   *Manager          // non-nil iff unsharded
	coord *ShardCoordinator // non-nil iff sharded
	disc  *discover.Discoverer
	model ModelConfig // training config for admitted pairs

	events []DiscoveryEvent
}

// Interface proofs: the wrapper must expose the scoring surface plus the
// diagnosis topology and discovery views (interface embedding would not
// promote these across the Fleet interface).
var (
	_ Fleet                  = (*discoveryFleet)(nil)
	_ diagnose.FleetView     = (*discoveryFleet)(nil)
	_ diagnose.DiscoveryView = (*discoveryFleet)(nil)
)

// newDiscoveryFleet bootstraps discovery on the training history, trains
// models for only the admitted pairs, and wraps the resulting fleet.
func newDiscoveryFleet(history *Dataset, cfg ManagerConfig, dcfg DiscoveryConfig, shards int) (*discoveryFleet, error) {
	ids := history.IDs()
	disc, err := discover.New(ids, dcfg)
	if err != nil {
		return nil, err
	}
	rows, err := manager.BuildRows(history, datasetStart(history), datasetEnd(history))
	if err != nil {
		return nil, err
	}
	admitted := disc.Bootstrap(rows)
	keep := make(map[Pair]bool, len(admitted))
	for _, p := range admitted {
		keep[p] = true
	}
	keepFn := func(p Pair) bool { return keep[p] }
	d := &discoveryFleet{disc: disc}
	if shards > 1 {
		coord, err := shard.New(history, shard.Config{Shards: shards, Manager: cfg, Keep: keepFn})
		if err != nil {
			return nil, err
		}
		d.inner, d.coord = coord, coord
		d.model = coord.Aggregator().Config().Model
	} else {
		mgr, err := manager.NewSubset(history, cfg, keepFn)
		if err != nil {
			return nil, err
		}
		d.inner, d.mgr = mgr, mgr
		d.model = mgr.Config().Model
	}
	// Some admitted candidates may have no trainable overlap; resync the
	// discoverer to the pairs that actually carry a model so the graph,
	// the checkpoint, and the budget occupancy agree.
	if got := d.inner.Pairs(); len(got) != len(admitted) {
		disc.SyncAdmitted(got)
	}
	return d, nil
}

// wrapRecoveredFleet attaches discovery to a fleet restored from a
// durable checkpoint: the discoverer's serialized state (when present)
// reproduces sketches, probes and round position exactly; otherwise the
// admitted set is resynced from the recovered pair graph with fresh
// sketches.
func wrapRecoveredFleet(fleet Fleet, dcfg DiscoveryConfig, state []byte) (*discoveryFleet, error) {
	disc, err := discover.New(fleet.IDs(), dcfg)
	if err != nil {
		return nil, err
	}
	d := &discoveryFleet{inner: fleet, disc: disc}
	switch f := fleet.(type) {
	case *Manager:
		d.mgr = f
		d.model = f.Config().Model
	case *ShardCoordinator:
		d.coord = f
		d.model = f.Aggregator().Config().Model
	default:
		return nil, fmt.Errorf("discovery: unsupported fleet %T", fleet)
	}
	if len(state) > 0 {
		if err := disc.UnmarshalState(state); err != nil {
			return nil, err
		}
	} else {
		disc.SyncAdmitted(fleet.Pairs())
	}
	return d, nil
}

// datasetStart returns the earliest series start in ds.
func datasetStart(ds *Dataset) time.Time {
	var t time.Time
	for i, id := range ds.IDs() {
		if s := ds.Get(id); i == 0 || s.Start.Before(t) {
			t = s.Start
		}
	}
	return t
}

// datasetEnd returns the latest series end in ds.
func datasetEnd(ds *Dataset) time.Time {
	var t time.Time
	for _, id := range ds.IDs() {
		if end := ds.Get(id).End(); end.After(t) {
			t = end
		}
	}
	return t
}

// Step scores the row on the wrapped fleet, feeds it to the discovery
// sketches, and applies any round-boundary graph changes before the next
// row: evictions free the model (and its shard slot), admissions train a
// model from the discoverer's retained history window and graft it in
// without touching neighbors.
func (d *discoveryFleet) Step(row Row) StepReport {
	report := d.inner.Step(row)
	ch := d.disc.Observe(row)
	if !ch.Empty() {
		d.apply(row.Time, ch)
	}
	return report
}

// apply mutates the live pair graph per one round's changes and records
// the event for DrainDiscoveryEvents.
func (d *discoveryFleet) apply(t time.Time, ch discover.Changes) {
	for _, p := range ch.Evict {
		if d.coord != nil {
			d.coord.RemovePair(p)
		} else {
			d.mgr.RemovePair(p)
		}
	}
	var admitted []Pair
	for _, p := range ch.Admit {
		pts := d.disc.TrainingPoints(p)
		if pts == nil {
			continue // not enough joint history yet; the sketch stays live
		}
		model, err := core.Train(pts, d.model)
		if err != nil {
			continue // degenerate window (e.g. constant); retry next round
		}
		if d.coord != nil {
			if d.coord.AddModel(p, model) != nil {
				continue
			}
		} else if d.mgr.AddModel(p, model) != nil {
			continue
		}
		admitted = append(admitted, p)
	}
	d.events = append(d.events, DiscoveryEvent{
		Time:     t,
		Round:    ch.Round,
		Admitted: admitted,
		Evicted:  append([]Pair(nil), ch.Evict...),
		Pairs:    len(d.inner.Pairs()),
	})
}

// DrainDiscoveryEvents returns the graph changes applied since the last
// drain, oldest first, and clears the buffer.
func (d *discoveryFleet) DrainDiscoveryEvents() []DiscoveryEvent {
	ev := d.events
	d.events = nil
	return ev
}

// Run replays a dataset through Step in time order (the discovery mirror
// of Manager.Run — the graph may change between rows).
func (d *discoveryFleet) Run(ds *Dataset, from, to time.Time) ([]StepReport, error) {
	rows, err := manager.BuildRows(ds, from, to)
	if err != nil {
		return nil, err
	}
	reports := make([]StepReport, 0, len(rows))
	for _, row := range rows {
		reports = append(reports, d.Step(row))
	}
	return reports, nil
}

// Fleet surface, delegated to the wrapped fleet.

func (d *discoveryFleet) IDs() []MeasurementID { return d.inner.IDs() }
func (d *discoveryFleet) Pairs() []Pair        { return d.inner.Pairs() }
func (d *discoveryFleet) Steps() int           { return d.inner.Steps() }
func (d *discoveryFleet) SystemMean() float64  { return d.inner.SystemMean() }
func (d *discoveryFleet) MeasurementMeans() map[MeasurementID]float64 {
	return d.inner.MeasurementMeans()
}
func (d *discoveryFleet) Localize() Localization { return d.inner.Localize() }
func (d *discoveryFleet) ResetAccumulators()     { d.inner.ResetAccumulators() }
func (d *discoveryFleet) SetAdaptive(on bool)    { d.inner.SetAdaptive(on) }
func (d *discoveryFleet) ResetChains()           { d.inner.ResetChains() }
func (d *discoveryFleet) Close()                 { d.inner.Close() }

// Diagnosis topology surface (diagnose.FleetView), delegated to the
// concrete fleet.

// PairStates returns every link's live scheduler state.
func (d *discoveryFleet) PairStates() []manager.PairState {
	if d.coord != nil {
		return d.coord.PairStates()
	}
	return d.mgr.PairStates()
}

// PairMeans returns the accumulated mean fitness per link.
func (d *discoveryFleet) PairMeans() map[Pair]float64 {
	if d.coord != nil {
		return d.coord.PairMeans()
	}
	return d.mgr.PairMeans()
}

// WorstPairs returns the k links with the lowest mean fitness.
func (d *discoveryFleet) WorstPairs(k int) []manager.PairScore {
	if d.coord != nil {
		return d.coord.WorstPairs(k)
	}
	return d.mgr.WorstPairs(k)
}

// Discovery surface (diagnose.DiscoveryView).

// AdmissionScores returns each admitted pair's last correlation estimate.
func (d *discoveryFleet) AdmissionScores() map[Pair]float64 { return d.disc.AdmissionScores() }

// BudgetInfo returns (admitted, budget, candidates) for the pair graph.
func (d *discoveryFleet) BudgetInfo() (admitted, budget, candidates int) {
	return d.disc.BudgetInfo()
}

// MarshalDiscoveryState serializes the discovery tier for a checkpoint.
func (d *discoveryFleet) MarshalDiscoveryState() ([]byte, error) {
	return d.disc.MarshalState()
}
