GO ?= go

.PHONY: all build vet test race bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure against the default environment.
figures:
	$(GO) run ./cmd/mcfigures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/baselines
	$(GO) run ./examples/streaming

clean:
	$(GO) clean ./...
