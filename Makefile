GO ?= go

.PHONY: all build vet test race check docs-check bench bench-json benchgate quality figures examples ops-smoke fuzz-short crash-test clean

all: build check

# check is the gate the default flow runs: static analysis (go vet over
# every package, internal/obs included), the documentation gate, the full
# test suite under the race detector (WAL and collector included), the
# kill -9 recovery gate, a bounded fuzzing pass over the wire-format and
# WAL decoders, and an advisory benchmark comparison against the committed
# baseline.
check: vet docs-check race crash-test fuzz-short benchgate

# docs-check fails on undocumented exported identifiers, packages without
# a package comment, and broken relative links in *.md. OPERATIONS.md
# flag/metric coverage is enforced separately by TestOperationsDocCoverage.
docs-check:
	$(GO) run ./cmd/docschk

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the scoring hot-path benchmarks and record them as JSON for diffing.
# ObsCounterHotPath tracks the metric-instrumentation overhead (must stay
# allocation-free and < 50ns per manager step sample).
BENCH_SCORING = '^Benchmark(Observe|RowInto|Prob|FitnessHotPath|ModelStepAdaptive|ModelStepOffline|ManagerStep|ManagerStepSharded|ManagerStepIncremental|ManagerStepBudget|DiscoverStep|ObsCounterHotPath|ShardNetStep)$$'
bench-json:
	$(GO) test -run '^$$' -bench $(BENCH_SCORING) -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_scoring.json

# benchgate reruns the scoring benchmarks (short benchtime — this is a
# drift tripwire, not a precision measurement) and compares them against
# the committed BENCH_scoring.json. Advisory: regressions are printed but
# never fail the build, because shared hardware is noisy. Tune with e.g.
# BENCHGATE_FLAGS='-tolerance 0.5' or '-strict'.
BENCHGATE_FLAGS ?=
benchgate:
	$(GO) test -run '^$$' -bench $(BENCH_SCORING) -benchtime 250ms -benchmem . \
		| $(GO) run ./cmd/benchjson > /tmp/mcorr-bench-fresh.json
	$(GO) run ./cmd/benchgate -baseline BENCH_scoring.json -fresh /tmp/mcorr-bench-fresh.json $(BENCHGATE_FLAGS)

# ops-smoke boots the live pipeline demo with the ops server — two
# tenants on one collector — scrapes /metrics and /healthz while rows
# stream, and asserts the collector and manager counters are moving,
# per-tenant series stay isolated under their tenant label, and the
# serving tier answers tenant listing, correlate queries and the
# incident API for each tenant. The end-to-end observability gate.
OPS_SMOKE_ADDR ?= 127.0.0.1:6464
ops-smoke:
	$(GO) build -o /tmp/mcorr-smoke-mccollect ./cmd/mccollect
	@set -e; \
	/tmp/mcorr-smoke-mccollect -tenant alpha,beta -machines 3 -rows 240 -pace 50ms -ops-addr $(OPS_SMOKE_ADDR) >/tmp/mcorr-smoke.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 3; \
	curl -fsS http://$(OPS_SMOKE_ADDR)/healthz | grep -q '^ok' || { echo 'ops-smoke: /healthz failed'; exit 1; }; \
	curl -fsS http://$(OPS_SMOKE_ADDR)/metrics > /tmp/mcorr-smoke-metrics.txt; \
	grep -Eq '^mcorr_collector_samples_total [1-9]' /tmp/mcorr-smoke-metrics.txt || { echo 'ops-smoke: collector samples counter not moving'; exit 1; }; \
	grep -Eq '^mcorr_manager_step_seconds_count [1-9]' /tmp/mcorr-smoke-metrics.txt || { echo 'ops-smoke: manager step histogram not moving'; exit 1; }; \
	grep -q '^# TYPE mcorr_alarm_raised_total counter' /tmp/mcorr-smoke-metrics.txt || { echo 'ops-smoke: alarm counter family missing'; exit 1; }; \
	grep -q '^mcorr_build_info{' /tmp/mcorr-smoke-metrics.txt || { echo 'ops-smoke: build info series missing'; exit 1; }; \
	grep -Eq '^mcorr_tenant_count 2' /tmp/mcorr-smoke-metrics.txt || { echo 'ops-smoke: tenant count gauge not 2'; exit 1; }; \
	for tn in alpha beta; do \
		grep -Eq "^mcorr_flow_tenant_samples_total\{tenant=\"$$tn\"\} [1-9]" /tmp/mcorr-smoke-metrics.txt || { echo "ops-smoke: no flow samples labeled tenant=$$tn"; exit 1; }; \
		grep -Eq "^mcorr_tenant_rows_total\{tenant=\"$$tn\"\} [1-9]" /tmp/mcorr-smoke-metrics.txt || { echo "ops-smoke: no scored rows labeled tenant=$$tn"; exit 1; }; \
		curl -fsS -X POST -d "{\"tenant\":\"$$tn\",\"anchor\":\"cpuUtil@L-srv-00\",\"window\":{\"last\":20}}" \
			http://$(OPS_SMOKE_ADDR)/api/v1/correlate > /tmp/mcorr-smoke-correlate-$$tn.json; \
		grep -q '"results"' /tmp/mcorr-smoke-correlate-$$tn.json || { echo "ops-smoke: correlate returned no results for $$tn"; exit 1; }; \
		grep -q "\"tenant\": \"$$tn\"" /tmp/mcorr-smoke-correlate-$$tn.json || { echo "ops-smoke: correlate engine block names the wrong tenant for $$tn"; exit 1; }; \
		curl -fsS "http://$(OPS_SMOKE_ADDR)/api/v1/incidents?tenant=$$tn" | grep -q '"total"' || { echo "ops-smoke: /api/v1/incidents not answering for $$tn"; exit 1; }; \
	done; \
	curl -fsS http://$(OPS_SMOKE_ADDR)/api/v1/tenants | grep -q '"total": 2' || { echo 'ops-smoke: /api/v1/tenants does not list both tenants'; exit 1; }; \
	curl -fsS http://$(OPS_SMOKE_ADDR)/statusz | grep -q 'manager.step' || { echo 'ops-smoke: /statusz has no manager.step spans'; exit 1; }; \
	curl -fsS http://$(OPS_SMOKE_ADDR)/debug/spans | grep -q '"spans"' || { echo 'ops-smoke: /debug/spans not answering'; exit 1; }; \
	echo 'ops-smoke OK'

# fuzz-short runs each decoder fuzz target for a bounded time (go only
# allows one -fuzz target per invocation). The checked-in corpora under
# testdata/fuzz seed the search; any crasher go finds is written there and
# replayed by plain `go test` forever after.
FUZZTIME ?= 30s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/collector
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSamples$$' -fuzztime $(FUZZTIME) ./internal/collector
	$(GO) test -run '^$$' -fuzz '^FuzzReadSegment$$' -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzReadRecord$$' -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzSketchOps$$' -fuzztime $(FUZZTIME) ./internal/discover
	$(GO) test -run '^$$' -fuzz '^FuzzCorrelateRequest$$' -fuzztime $(FUZZTIME) .

# crash-test is the durability gate: build mcdetect, SIGKILL it mid-stream,
# restart from the same -data-dir, and require the per-step fitness
# trajectory to match an uninterrupted run bit for bit — unsharded and
# across every sharded topology.
crash-test:
	$(GO) test -race -count=1 -run '^TestCrashRecovery' -v ./internal/testkit

# quality runs the detection-quality harness: the incident acceptance
# scenario at a sweep of pair budgets (full, 50%, 25%, 10%), scored for
# recall, precision, time-to-detect and localization rank. QUALITY.json
# is the committed budget-tuning reference; CI uploads a fresh copy as an
# advisory artifact.
quality:
	$(GO) run ./cmd/mcquality -out QUALITY.json

# Regenerate every paper figure against the default environment.
figures:
	$(GO) run ./cmd/mcfigures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/baselines
	$(GO) run ./examples/streaming

clean:
	$(GO) clean ./...
