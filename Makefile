GO ?= go

.PHONY: all build vet test race check bench bench-json figures examples clean

all: build check

# check is the gate the default flow runs: static analysis plus the full
# test suite under the race detector.
check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the scoring hot-path benchmarks and record them as JSON for diffing.
bench-json:
	$(GO) test -run '^$$' -bench '^Benchmark(Observe|RowInto|Prob|FitnessHotPath|ModelStepAdaptive|ModelStepOffline|ManagerStep)$$' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_scoring.json

# Regenerate every paper figure against the default environment.
figures:
	$(GO) run ./cmd/mcfigures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/baselines
	$(GO) run ./examples/streaming

clean:
	$(GO) clean ./...
