GO ?= go

.PHONY: all build vet test race check bench bench-json figures examples ops-smoke clean

all: build check

# check is the gate the default flow runs: static analysis (go vet over
# every package, internal/obs included) plus the full test suite under the
# race detector.
check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the scoring hot-path benchmarks and record them as JSON for diffing.
# ObsCounterHotPath tracks the metric-instrumentation overhead (must stay
# allocation-free and < 50ns per manager step sample).
bench-json:
	$(GO) test -run '^$$' -bench '^Benchmark(Observe|RowInto|Prob|FitnessHotPath|ModelStepAdaptive|ModelStepOffline|ManagerStep|ObsCounterHotPath)$$' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_scoring.json

# ops-smoke boots the live pipeline demo with the ops server, scrapes
# /metrics and /healthz while rows stream, and asserts the collector and
# manager counters are moving — the end-to-end observability gate.
OPS_SMOKE_ADDR ?= 127.0.0.1:6464
ops-smoke:
	$(GO) build -o /tmp/mcorr-smoke-mccollect ./cmd/mccollect
	@set -e; \
	/tmp/mcorr-smoke-mccollect -machines 3 -rows 240 -pace 50ms -ops-addr $(OPS_SMOKE_ADDR) >/tmp/mcorr-smoke.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 3; \
	curl -fsS http://$(OPS_SMOKE_ADDR)/healthz | grep -q '^ok' || { echo 'ops-smoke: /healthz failed'; exit 1; }; \
	curl -fsS http://$(OPS_SMOKE_ADDR)/metrics > /tmp/mcorr-smoke-metrics.txt; \
	grep -Eq '^mcorr_collector_samples_total [1-9]' /tmp/mcorr-smoke-metrics.txt || { echo 'ops-smoke: collector samples counter not moving'; exit 1; }; \
	grep -Eq '^mcorr_manager_step_seconds_count [1-9]' /tmp/mcorr-smoke-metrics.txt || { echo 'ops-smoke: manager step histogram not moving'; exit 1; }; \
	grep -q '^# TYPE mcorr_alarm_raised_total counter' /tmp/mcorr-smoke-metrics.txt || { echo 'ops-smoke: alarm counter family missing'; exit 1; }; \
	curl -fsS http://$(OPS_SMOKE_ADDR)/statusz | grep -q 'manager.step' || { echo 'ops-smoke: /statusz has no manager.step spans'; exit 1; }; \
	echo 'ops-smoke OK'

# Regenerate every paper figure against the default environment.
figures:
	$(GO) run ./cmd/mcfigures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/baselines
	$(GO) run ./examples/streaming

clean:
	$(GO) clean ./...
